package slurm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ExpandNodeList expands a Slurm hostlist expression into individual node
// names: "frontier[00001-00003,00007]" → frontier00001, frontier00002,
// frontier00003, frontier00007. Top-level comma-separated groups are
// supported ("a01,b[02-03]"), zero-padding is preserved.
func ExpandNodeList(s string) ([]string, error) {
	var out []string
	for _, group := range splitTopLevel(strings.TrimSpace(s)) {
		if group == "" {
			continue
		}
		names, err := expandGroup(group)
		if err != nil {
			return nil, err
		}
		out = append(out, names...)
	}
	return out, nil
}

// NodeListCount returns the number of nodes a hostlist names without
// materializing them.
func NodeListCount(s string) (int, error) {
	total := 0
	for _, group := range splitTopLevel(strings.TrimSpace(s)) {
		if group == "" {
			continue
		}
		open := strings.IndexByte(group, '[')
		if open < 0 {
			total++
			continue
		}
		close := strings.IndexByte(group, ']')
		if close < open {
			return 0, fmt.Errorf("slurm: malformed hostlist %q", group)
		}
		for _, r := range strings.Split(group[open+1:close], ",") {
			lo, hi, _, err := parseRange(r)
			if err != nil {
				return 0, err
			}
			total += hi - lo + 1
		}
	}
	return total, nil
}

// splitTopLevel splits on commas outside brackets.
func splitTopLevel(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func expandGroup(g string) ([]string, error) {
	open := strings.IndexByte(g, '[')
	if open < 0 {
		if strings.ContainsAny(g, "[]") {
			return nil, fmt.Errorf("slurm: malformed hostlist %q", g)
		}
		return []string{g}, nil
	}
	close := strings.IndexByte(g, ']')
	if close < open || close != len(g)-1 {
		return nil, fmt.Errorf("slurm: malformed hostlist %q", g)
	}
	prefix := g[:open]
	var out []string
	for _, r := range strings.Split(g[open+1:close], ",") {
		lo, hi, width, err := parseRange(r)
		if err != nil {
			return nil, err
		}
		for n := lo; n <= hi; n++ {
			out = append(out, fmt.Sprintf("%s%0*d", prefix, width, n))
		}
	}
	return out, nil
}

// parseRange parses "00003" or "00001-00007", returning bounds and the
// zero-padded width.
func parseRange(r string) (lo, hi, width int, err error) {
	r = strings.TrimSpace(r)
	if r == "" {
		return 0, 0, 0, fmt.Errorf("slurm: empty hostlist range")
	}
	parts := strings.SplitN(r, "-", 2)
	lo, err = strconv.Atoi(parts[0])
	if err != nil || lo < 0 {
		return 0, 0, 0, fmt.Errorf("slurm: bad hostlist range %q", r)
	}
	width = len(parts[0])
	hi = lo
	if len(parts) == 2 {
		hi, err = strconv.Atoi(parts[1])
		if err != nil || hi < lo {
			return 0, 0, 0, fmt.Errorf("slurm: bad hostlist range %q", r)
		}
	}
	return lo, hi, width, nil
}

// CompressNodeList renders node names in Slurm's compact hostlist form,
// grouping consecutive indices per prefix: frontier00001..3 + frontier00007
// → "frontier[00001-00003,00007]". Names without a numeric suffix pass
// through. The output groups are ordered by prefix.
func CompressNodeList(names []string) string {
	type node struct {
		idx   int
		width int
	}
	byPrefix := map[string][]node{}
	var plain []string
	var prefixOrder []string
	seenPrefix := map[string]bool{}
	for _, name := range names {
		i := len(name)
		for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
			i--
		}
		if i == len(name) {
			plain = append(plain, name)
			continue
		}
		prefix, digits := name[:i], name[i:]
		n, err := strconv.Atoi(digits)
		if err != nil {
			plain = append(plain, name)
			continue
		}
		if !seenPrefix[prefix] {
			seenPrefix[prefix] = true
			prefixOrder = append(prefixOrder, prefix)
		}
		byPrefix[prefix] = append(byPrefix[prefix], node{idx: n, width: len(digits)})
	}
	sort.Strings(prefixOrder)
	var groups []string
	groups = append(groups, plain...)
	for _, prefix := range prefixOrder {
		nodes := byPrefix[prefix]
		sort.Slice(nodes, func(a, b int) bool { return nodes[a].idx < nodes[b].idx })
		var ranges []string
		for i := 0; i < len(nodes); {
			j := i
			for j+1 < len(nodes) && nodes[j+1].idx == nodes[j].idx+1 && nodes[j+1].width == nodes[i].width {
				j++
			}
			if i == j {
				ranges = append(ranges, fmt.Sprintf("%0*d", nodes[i].width, nodes[i].idx))
			} else {
				ranges = append(ranges, fmt.Sprintf("%0*d-%0*d",
					nodes[i].width, nodes[i].idx, nodes[j].width, nodes[j].idx))
			}
			i = j + 1
		}
		if len(ranges) == 1 && !strings.Contains(ranges[0], "-") {
			groups = append(groups, prefix+ranges[0])
			continue
		}
		groups = append(groups, prefix+"["+strings.Join(ranges, ",")+"]")
	}
	sort.Strings(groups[:len(plain)])
	return strings.Join(groups, ",")
}
