package slurm

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTrace materialises a trace body (header + rows) to a temp file.
func writeTrace(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// buildTrace renders n data rows, replacing the rows at malformed
// indices with an undecodable cell.
func buildTrace(rng *rand.Rand, n int, malformed map[int]bool) string {
	var sb strings.Builder
	sb.WriteString("JobID|User|State|Elapsed|NNodes\n")
	users := []string{"alice", "bob", "carol", "dave"}
	for i := 0; i < n; i++ {
		if malformed[i] {
			fmt.Fprintf(&sb, "%d|%s|COMPLETED|xx:yy|1\n", 100000+i, users[i%len(users)])
			continue
		}
		fmt.Fprintf(&sb, "%d|%s|COMPLETED|%02d:%02d:00|%d\n",
			100000+i, users[i%len(users)], rng.Intn(24), rng.Intn(60), 1+rng.Intn(512))
	}
	return sb.String()
}

func TestChunkScannerPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	body := buildTrace(rng, 200, nil)
	path := writeTrace(t, body)
	data := []byte(body)
	headerEnd := strings.IndexByte(body, '\n') + 1

	for _, n := range []int{1, 2, 3, 4, 7, 16, 1000} {
		cs, err := NewChunkScanner(path, n)
		if err != nil {
			t.Fatal(err)
		}
		chunks := cs.Chunks()
		if len(chunks) == 0 || len(chunks) > n {
			t.Fatalf("n=%d: got %d chunks", n, len(chunks))
		}
		// Chunks tile the data region exactly, in order.
		off := int64(headerEnd)
		for i, c := range chunks {
			if c.Off != off {
				t.Fatalf("n=%d chunk %d: starts at %d, want %d", n, i, c.Off, off)
			}
			if c.Len <= 0 {
				t.Fatalf("n=%d chunk %d: empty", n, i)
			}
			// Every chunk boundary except EOF sits just past a newline.
			if end := c.Off + c.Len; end < int64(len(data)) && data[end-1] != '\n' {
				t.Fatalf("n=%d chunk %d: boundary %d not newline-aligned", n, i, end)
			}
			off = c.Off + c.Len
		}
		if off != int64(len(data)) {
			t.Fatalf("n=%d: chunks cover %d bytes, want %d", n, off, len(data))
		}
	}
}

func TestChunkScannerHeaderOnly(t *testing.T) {
	cs, err := NewChunkScanner(writeTrace(t, "JobID|User\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if cs.NumChunks() != 0 {
		t.Errorf("header-only file: %d chunks, want 0", cs.NumChunks())
	}
	n := 0
	for range cs.All(4) {
		n++
	}
	if n != 0 {
		t.Errorf("header-only file yielded %d events", n)
	}
	if _, err := NewChunkScanner(writeTrace(t, ""), 2); err == nil {
		t.Error("empty file: want header error")
	}
	if _, err := NewChunkScanner(writeTrace(t, "JobID|Mystery\nx|y\n"), 2); err == nil {
		t.Error("unknown header field: want error")
	}
}

// TestChunkScannerAllMatchesSequential is the ordering property test:
// for randomized row counts, malformed-row placements, chunk counts,
// and worker counts, the parallel merged stream must yield the same
// events in the same order as the sequential string reader.
func TestChunkScannerAllMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		rows := 1 + rng.Intn(120)
		malformed := map[int]bool{}
		for i := 0; i < rows/10; i++ {
			malformed[rng.Intn(rows)] = true
		}
		body := buildTrace(rng, rows, malformed)
		path := writeTrace(t, body)
		nchunks := 1 + rng.Intn(7)
		workers := 1 + rng.Intn(4)

		sr, err := NewRecordReader(strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		want := renderSeq(t, sr.All(), sr.Fields())

		cs, err := NewChunkScanner(path, nchunks)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for rec, err := range cs.All(workers) {
			if err != nil {
				if _, ok := err.(*RowError); !ok {
					t.Fatalf("terminal error: %v", err)
				}
				got = append(got, "err")
				continue
			}
			enc, eerr := EncodeRecord(rec, cs.Fields())
			if eerr != nil {
				t.Fatal(eerr)
			}
			got = append(got, enc)
		}
		// Row-error line numbers are chunk-relative past chunk 0, so
		// compare event kinds and record bytes, not error text.
		if len(want) != len(got) {
			t.Fatalf("trial %d (rows=%d chunks=%d workers=%d): %d events vs %d",
				trial, rows, nchunks, workers, len(want), len(got))
		}
		for i := range want {
			w := want[i]
			if strings.HasPrefix(w, "err: ") {
				w = "err"
			}
			if w != got[i] {
				t.Fatalf("trial %d event %d differs:\nseq:      %s\nparallel: %s", trial, i, w, got[i])
			}
		}
	}
}

func TestChunkScannerAllEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	path := writeTrace(t, buildTrace(rng, 5000, nil))
	cs, err := NewChunkScanner(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range cs.All(4) {
		if e != nil {
			t.Fatal(e)
		}
		n++
		if n == 10 {
			break // must cancel the outstanding chunk decoders cleanly
		}
	}
	if n != 10 {
		t.Errorf("broke after %d records", n)
	}
}

// FuzzChunkBoundaries feeds arbitrary trace bodies through the
// sequential reader and the chunked merge at several chunk counts: the
// surviving records must match byte for byte no matter where the chunk
// boundaries land (including mid-row candidates that the planner must
// push to the next newline).
func FuzzChunkBoundaries(f *testing.F) {
	f.Add("JobID|User|State|Elapsed|NNodes\n100001|alice|COMPLETED|01:30:00|128\n100002|bob|FAILED|00:10:00|9.4K\n", 2)
	// Candidate boundaries landing mid-row: long rows, tiny chunks.
	f.Add("JobID|User\n1|aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\n2|b\n3|c\n", 5)
	f.Add("JobID|User\n1|a\r\n2|b\r\n3|c\r\n", 3) // CRLF rows
	f.Add("JobID|User\n1|a\n\n \n2|b", 4)         // blanks + unterminated tail
	f.Add("JobID|User\n1|a|extra\n2|b\n", 2)      // malformed row at a boundary
	f.Fuzz(func(t *testing.T, body string, nchunks int) {
		if len(body) > 1<<16 || nchunks < 1 || nchunks > 32 {
			return
		}
		sr, err := NewRecordReader(strings.NewReader(body))
		if err != nil {
			return // both paths reject the header identically (mirror tests pin it)
		}
		var want []string
		for rec, e := range sr.All() {
			if e != nil {
				if _, ok := e.(*RowError); !ok {
					return // terminal decode error: ordering comparison n/a
				}
				want = append(want, "err")
				continue
			}
			enc, eerr := EncodeRecord(rec, sr.Fields())
			if eerr != nil {
				t.Fatal(eerr)
			}
			want = append(want, enc)
		}

		path := filepath.Join(t.TempDir(), "fuzz.txt")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		cs, err := NewChunkScanner(path, nchunks)
		if err != nil {
			t.Fatalf("sequential accepted header but chunk scanner failed: %v", err)
		}
		var got []string
		for rec, e := range cs.All(3) {
			if e != nil {
				if _, ok := e.(*RowError); !ok {
					t.Fatalf("chunked path hit terminal error the sequential path did not: %v", e)
				}
				got = append(got, "err")
				continue
			}
			enc, eerr := EncodeRecord(rec, cs.Fields())
			if eerr != nil {
				t.Fatal(eerr)
			}
			got = append(got, enc)
		}
		if len(want) != len(got) {
			t.Fatalf("chunks=%d: %d events vs %d\nbody=%q", nchunks, len(want), len(got), body)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("chunks=%d event %d:\nseq:      %s\nparallel: %s\nbody=%q",
					nchunks, i, want[i], got[i], body)
			}
		}
	})
}
