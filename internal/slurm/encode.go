package slurm

import (
	"fmt"
	"strings"
)

// Separator is the column separator sacct uses with --parsable2.
const Separator = "|"

// Header renders the pipe-separated header line for a field selection.
func Header(fields []string) string { return strings.Join(fields, Separator) }

// EncodeRecord renders the named fields of r as one pipe-separated line.
// Field names are resolved case-insensitively; unknown names are an error.
// Values containing the separator are emitted as-is (sacct does the same);
// the curation stage downstream treats such rows as malformed.
func EncodeRecord(r *Record, fields []string) (string, error) {
	parts := make([]string, len(fields))
	for i, name := range fields {
		f, ok := FieldByName(name)
		if !ok {
			return "", fmt.Errorf("slurm: unknown field %q", name)
		}
		parts[i] = f.Get(r)
	}
	return strings.Join(parts, Separator), nil
}

// DecodeRecord parses one pipe-separated line into a Record, using the
// field selection that produced it. A column-count mismatch or any
// per-field parse failure is an error; callers treat such rows as the
// malformed records the curation stage discards.
func DecodeRecord(line string, fields []string) (*Record, error) {
	parts := strings.Split(line, Separator)
	if len(parts) != len(fields) {
		return nil, fmt.Errorf("slurm: %d columns, want %d", len(parts), len(fields))
	}
	r := &Record{TRESReq: TRES{}, TRESUsageInAve: TRES{}}
	for i, name := range fields {
		f, ok := FieldByName(name)
		if !ok {
			return nil, fmt.Errorf("slurm: unknown field %q", name)
		}
		if err := f.Set(r, parts[i]); err != nil {
			return nil, fmt.Errorf("slurm: field %s: %w", name, err)
		}
	}
	return r, nil
}
