package slurm

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// randomRecord synthesizes a record with randomized values in every field
// the wire format carries exactly (sub-second times and abbreviated big
// counts round only approximately and are fixed to exact forms here).
func randomRecord(rng *rand.Rand) *Record {
	base := time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)
	submit := base.Add(time.Duration(rng.Intn(1<<22)) * time.Second)
	start := submit.Add(time.Duration(rng.Intn(1<<16)) * time.Second)
	elapsed := time.Duration(rng.Intn(1<<17)) * time.Second
	states := TerminalStates()
	r := &Record{
		ID:             NewJobID(int64(rng.Intn(1<<20) + 1)),
		JobName:        "job_" + string(rune('a'+rng.Intn(26))),
		User:           "u" + string(rune('0'+rng.Intn(10))),
		UID:            int64(rng.Intn(9_999)),
		Group:          "grp",
		Account:        "prj",
		Cluster:        "frontier",
		Partition:      "batch",
		Submit:         submit,
		Eligible:       submit,
		Start:          start,
		End:            start.Add(elapsed),
		Elapsed:        elapsed,
		Timelimit:      elapsed + time.Duration(rng.Intn(1<<16))*time.Second,
		NNodes:         int64(rng.Intn(9_408) + 1),
		NCPUs:          int64(rng.Intn(9_999) + 1),
		NTasks:         int64(rng.Intn(9_999)),
		ReqNodes:       int64(rng.Intn(9_408) + 1),
		ReqCPUs:        int64(rng.Intn(9_999) + 1),
		ReqMem:         int64(rng.Intn(512)) << 30,
		State:          states[rng.Intn(len(states))],
		ExitCode:       rng.Intn(128),
		Priority:       int64(rng.Intn(9_999)),
		QOS:            "normal",
		QOSReq:         "normal",
		Flags:          []string{FlagMain},
		Comment:        "class",
		WorkDir:        "/lustre/orion/prj/scratch",
		TRESReq:        TRES{"cpu": int64(rng.Intn(1000) + 1), "node": int64(rng.Intn(100) + 1)},
		TRESUsageInAve: TRES{},
		Restarts:       int64(rng.Intn(3)),
	}
	if rng.Intn(3) == 0 {
		r.ID = r.ID.WithStep(int64(rng.Intn(40)))
	}
	if rng.Intn(4) == 0 {
		r.Flags = []string{FlagBackfill}
	}
	return r
}

// TestPropertyEncodeDecodeRoundTrip feeds randomized records through the
// full 60-field pipe encoding and back, requiring exact recovery of every
// exactly-representable field.
func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	fields := SelectedNames()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		want := randomRecord(rng)
		line, err := EncodeRecord(want, fields)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		got, err := DecodeRecord(line, fields)
		if err != nil {
			t.Fatalf("seed %d: decode: %v\nline: %s", seed, err, line)
		}
		type exact struct {
			id                 JobID
			user               string
			state              State
			nnodes, ncpus      int64
			submit, start, end time.Time
			elapsed, limit     time.Duration
			priority, restarts int64
			exit               int
			backfill           bool
			reqNodes, reqCPUs  int64
		}
		a := exact{want.ID, want.User, want.State, want.NNodes, want.NCPUs,
			want.Submit, want.Start, want.End, want.Elapsed, want.Timelimit,
			want.Priority, want.Restarts, want.ExitCode, want.Backfilled(),
			want.ReqNodes, want.ReqCPUs}
		b := exact{got.ID, got.User, got.State, got.NNodes, got.NCPUs,
			got.Submit, got.Start, got.End, got.Elapsed, got.Timelimit,
			got.Priority, got.Restarts, got.ExitCode, got.Backfilled(),
			got.ReqNodes, got.ReqCPUs}
		if a != b {
			t.Fatalf("seed %d: mismatch:\n got %+v\nwant %+v\nline: %s", seed, b, a, line)
		}
		if got.TRESReq.Get("cpu") != want.TRESReq.Get("cpu") {
			t.Fatalf("seed %d: TRES lost", seed)
		}
		// Encoding the decoded record reproduces the identical line.
		line2, err := EncodeRecord(got, fields)
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if line2 != line {
			t.Fatalf("seed %d: encoding not idempotent:\n%s\n%s", seed, line, line2)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
