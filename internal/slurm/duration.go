package slurm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// ParseDuration parses a Slurm elapsed/timelimit string. Accepted layouts,
// as produced by sacct and accepted by sbatch:
//
//	MM:SS
//	HH:MM:SS
//	D-HH
//	D-HH:MM
//	D-HH:MM:SS
//	MM (bare minutes, sbatch --time shorthand)
//	UNLIMITED / INVALID / empty → error
func ParseDuration(s string) (time.Duration, error) {
	t := strings.TrimSpace(s)
	if t == "" || strings.EqualFold(t, "UNLIMITED") || strings.EqualFold(t, "INVALID") {
		return 0, fmt.Errorf("slurm: unparseable duration %q", s)
	}
	var days int64
	if i := strings.IndexByte(t, '-'); i >= 0 {
		d, err := strconv.ParseInt(t[:i], 10, 64)
		if err != nil || d < 0 {
			return 0, fmt.Errorf("slurm: bad day count in duration %q", s)
		}
		days, t = d, t[i+1:]
	}
	parts := strings.Split(t, ":")
	for _, p := range parts {
		if p == "" {
			return 0, fmt.Errorf("slurm: empty component in duration %q", s)
		}
	}
	var h, m, sec int64
	var err error
	switch len(parts) {
	case 1:
		// D-HH when a day prefix was present, bare minutes otherwise.
		if days > 0 || strings.Contains(s, "-") {
			h, err = strconv.ParseInt(parts[0], 10, 64)
		} else {
			m, err = strconv.ParseInt(parts[0], 10, 64)
		}
	case 2:
		if strings.Contains(s, "-") {
			// D-HH:MM
			h, err = strconv.ParseInt(parts[0], 10, 64)
			if err == nil {
				m, err = strconv.ParseInt(parts[1], 10, 64)
			}
		} else {
			// MM:SS
			m, err = strconv.ParseInt(parts[0], 10, 64)
			if err == nil {
				sec, err = strconv.ParseInt(parts[1], 10, 64)
			}
		}
	case 3:
		h, err = strconv.ParseInt(parts[0], 10, 64)
		if err == nil {
			m, err = strconv.ParseInt(parts[1], 10, 64)
		}
		if err == nil {
			sec, err = strconv.ParseInt(parts[2], 10, 64)
		}
	default:
		return 0, fmt.Errorf("slurm: malformed duration %q", s)
	}
	if err != nil || h < 0 || m < 0 || sec < 0 {
		return 0, fmt.Errorf("slurm: malformed duration %q", s)
	}
	// Guard against int64-nanosecond overflow (time.Duration tops out
	// near 292 years); component caps keep the seconds arithmetic itself
	// overflow-free.
	const maxComponent = int64(1) << 33
	if days > maxComponent || h > maxComponent || m > maxComponent {
		return 0, fmt.Errorf("slurm: duration %q out of range", s)
	}
	totalSec := days*86400 + h*3600 + m*60 + sec
	if totalSec > int64(math.MaxInt64)/int64(time.Second) {
		return 0, fmt.Errorf("slurm: duration %q out of range", s)
	}
	return time.Duration(totalSec) * time.Second, nil
}

// FormatDuration renders a duration in canonical sacct form: HH:MM:SS for
// durations under a day, D-HH:MM:SS otherwise. Sub-second precision is
// truncated, matching sacct's whole-second accounting.
func FormatDuration(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	total := int64(d / time.Second)
	days := total / 86400
	total %= 86400
	h, m, s := total/3600, (total%3600)/60, total%60
	var buf [20]byte
	b := buf[:0]
	if days > 0 {
		b = strconv.AppendInt(b, days, 10)
		b = append(b, '-')
	}
	b = appendTwo(b, h)
	b = append(b, ':')
	b = appendTwo(b, m)
	b = append(b, ':')
	b = appendTwo(b, s)
	return string(b)
}

// appendTwo appends v as two decimal digits (v must be in [0, 99]).
func appendTwo(b []byte, v int64) []byte {
	return append(b, byte('0'+v/10), byte('0'+v%10))
}

// sacct timestamps use ISO-8601 without a zone; the accounting DB stores
// cluster-local time.
const timeLayout = "2006-01-02T15:04:05"

// ParseTime parses a sacct timestamp. "Unknown" and "None" (emitted for
// jobs that never started) map to the zero time without error.
func ParseTime(s string) (time.Time, error) {
	t := strings.TrimSpace(s)
	if t == "" || strings.EqualFold(t, "Unknown") || strings.EqualFold(t, "None") {
		return time.Time{}, nil
	}
	ts, err := time.Parse(timeLayout, t)
	if err != nil {
		return time.Time{}, fmt.Errorf("slurm: bad timestamp %q", s)
	}
	return ts, nil
}

// FormatTime renders a timestamp in sacct form; the zero time renders as
// "Unknown", matching sacct output for never-started jobs.
func FormatTime(t time.Time) string {
	if t.IsZero() {
		return "Unknown"
	}
	return t.Format(timeLayout)
}
