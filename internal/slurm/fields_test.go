package slurm

import (
	"strings"
	"testing"
	"time"
)

// Table 1 reproduction: the study selects a curated subset (the paper cites
// "50+", §3.1 says 60) of the 118 available accounting columns, grouped
// into nine categories.
func TestTable1FieldSelection(t *testing.T) {
	sel := SelectedNames()
	if len(sel) != 60 {
		t.Errorf("selected fields = %d, want 60", len(sel))
	}
	all := AllFieldNames()
	if len(all) != 118 {
		t.Errorf("field universe = %d, want 118", len(all))
	}
	if got := len(Categories()); got != 9 {
		t.Errorf("categories = %d, want 9", got)
	}
	// Every selected field belongs to exactly one Table 1 category.
	perCat := 0
	for _, cat := range Categories() {
		perCat += len(FieldsInCategory(cat))
	}
	if perCat != len(sel) {
		t.Errorf("category partition covers %d fields, want %d", perCat, len(sel))
	}
	// The paper's example of an excluded redundant field.
	if _, ok := FieldByName("ElapsedRaw"); ok {
		t.Error("ElapsedRaw should be excluded as redundant")
	}
	seen := map[string]bool{}
	for _, n := range all {
		key := strings.ToLower(n)
		if seen[key] {
			t.Errorf("duplicate field name %q in universe", n)
		}
		seen[key] = true
	}
}

func TestTable1PaperFieldsPresent(t *testing.T) {
	// Every field Table 1 names must resolve.
	for _, name := range []string{
		"JobID", "Partition", "Reservation", "ReservationID",
		"Submit", "Start", "End", "Elapsed", "Timelimit",
		"NNodes", "NCPUS", "NTasks", "ReqMem", "ReqGRES", "Layout",
		"VMSize", "AveCPU", "MaxRSS", "TotalCPU", "NodeList", "ConsumedEnergy",
		"WorkDir", "AveDiskRead", "AveDiskWrite", "MaxDiskRead", "MaxDiskWrite",
		"State", "ExitCode", "Reason", "Suspended", "Restarts", "Constraints",
		"Priority", "Eligible", "QOS", "QOSReq", "Flags", "TRESUsageInAve", "ReqTRES",
		"Backfill", "Dependency", "ArrayJobID",
		"Comment", "SystemComment", "AdminComment",
	} {
		if _, ok := FieldByName(name); !ok {
			t.Errorf("Table 1 field %q missing from catalogue", name)
		}
	}
}

func TestFieldLookupCaseInsensitive(t *testing.T) {
	for _, name := range []string{"jobid", "JOBID", " JobID "} {
		if _, ok := FieldByName(name); !ok {
			t.Errorf("FieldByName(%q) failed", name)
		}
	}
	if _, ok := FieldByName("NoSuchField"); ok {
		t.Error("FieldByName(NoSuchField) should fail")
	}
}

func sampleRecord() *Record {
	return &Record{
		ID:             NewJobID(123456),
		JobName:        "gromacs_prod",
		User:           "u0042",
		Account:        "mat187",
		Cluster:        "frontier",
		Partition:      "batch",
		Submit:         time.Date(2024, 3, 1, 8, 0, 0, 0, time.UTC),
		Start:          time.Date(2024, 3, 1, 9, 30, 0, 0, time.UTC),
		End:            time.Date(2024, 3, 1, 11, 0, 0, 0, time.UTC),
		Elapsed:        90 * time.Minute,
		Timelimit:      2 * time.Hour,
		NNodes:         128,
		NCPUs:          7168,
		NTasks:         1024,
		ReqMem:         512 << 30,
		State:          StateCompleted,
		QOS:            "normal",
		Priority:       125000,
		Flags:          []string{FlagBackfill},
		TRESReq:        TRES{"cpu": 7168, "node": 128},
		TRESUsageInAve: TRES{"cpu": 7000},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := sampleRecord()
	fields := SelectedNames()
	line, err := EncodeRecord(r, fields)
	if err != nil {
		t.Fatalf("EncodeRecord: %v", err)
	}
	if strings.Count(line, Separator) != len(fields)-1 {
		t.Fatalf("separator count = %d, want %d", strings.Count(line, Separator), len(fields)-1)
	}
	got, err := DecodeRecord(line, fields)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if got.ID != r.ID || got.User != r.User || got.State != r.State ||
		got.NNodes != r.NNodes || !got.Submit.Equal(r.Submit) ||
		got.Elapsed != r.Elapsed || got.Timelimit != r.Timelimit ||
		!got.Backfilled() {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
	if got.TRESReq.Get("node") != 128 {
		t.Errorf("TRESReq lost: %v", got.TRESReq)
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	fields := []string{"JobID", "State"}
	if _, err := DecodeRecord("123", fields); err == nil {
		t.Error("column mismatch: want error")
	}
	if _, err := DecodeRecord("123|NOT_A_STATE", fields); err == nil {
		t.Error("bad state: want error")
	}
	if _, err := DecodeRecord("abc|COMPLETED", fields); err == nil {
		t.Error("bad job id: want error")
	}
	if _, err := EncodeRecord(&Record{ID: NewJobID(1)}, []string{"Nope"}); err == nil {
		t.Error("unknown field: want error")
	}
}

func TestBackfillDerivedField(t *testing.T) {
	r := &Record{ID: NewJobID(1), Flags: []string{FlagMain}}
	f, _ := FieldByName("Backfill")
	if got := f.Get(r); got != "0" {
		t.Errorf("Backfill on SchedMain job = %q", got)
	}
	if err := f.Set(r, "1"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if !r.Backfilled() {
		t.Error("Set(1) did not add SchedBackfill flag")
	}
	if err := f.Set(r, "purple"); err == nil {
		t.Error("Set(purple): want error")
	}
}

func TestRecordHelpers(t *testing.T) {
	r := sampleRecord()
	w, ok := r.WaitTime()
	if !ok || w != 90*time.Minute {
		t.Errorf("WaitTime = %v, %v; want 90m, true", w, ok)
	}
	if slack := r.WalltimeSlack(); slack != 30*time.Minute {
		t.Errorf("WalltimeSlack = %v, want 30m", slack)
	}
	if r.Year() != 2024 {
		t.Errorf("Year = %d", r.Year())
	}
	never := &Record{Submit: r.Submit}
	if _, ok := never.WaitTime(); ok {
		t.Error("WaitTime on never-started job: ok = true")
	}
}

func TestStateParsing(t *testing.T) {
	for _, s := range States() {
		got, err := ParseState(s.String())
		if err != nil || got != s {
			t.Errorf("ParseState(%q) = %v, %v", s.String(), got, err)
		}
	}
	got, err := ParseState("CANCELLED by 1234")
	if err != nil || got != StateCancelled {
		t.Errorf("ParseState(CANCELLED by uid) = %v, %v", got, err)
	}
	if _, err := ParseState("EXPLODED"); err == nil {
		t.Error("ParseState(EXPLODED): want error")
	}
	if !StateCompleted.Success() || StateFailed.Success() {
		t.Error("Success classification wrong")
	}
	if StatePending.Terminal() || !StateTimeout.Terminal() {
		t.Error("Terminal classification wrong")
	}
	if len(TerminalStates()) >= len(States()) {
		t.Error("TerminalStates should be a strict subset")
	}
}

func TestTRESRoundTrip(t *testing.T) {
	in := "cpu=56,gres/gpu=8,mem=512G,node=2"
	tr, err := ParseTRES(in)
	if err != nil {
		t.Fatalf("ParseTRES: %v", err)
	}
	if tr.Get("mem") != 512<<30 || tr.Get("gres/gpu") != 8 {
		t.Errorf("values: %v", tr)
	}
	if got := tr.String(); got != in {
		t.Errorf("String() = %q, want %q", got, in)
	}
	clone := tr.Clone()
	clone["cpu"] = 1
	if tr.Get("cpu") == 1 {
		t.Error("Clone aliases original")
	}
	if _, err := ParseTRES("oops"); err == nil {
		t.Error("ParseTRES(oops): want error")
	}
	empty, err := ParseTRES("")
	if err != nil || len(empty) != 0 || empty.String() != "" {
		t.Errorf("empty TRES: %v, %v", empty, err)
	}
}
