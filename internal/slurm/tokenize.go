package slurm

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"time"
	"unsafe"
)

// This file is the zero-alloc byte plane of the decoder: a field
// tokenizer plus sacct-text parsers that work on []byte without
// round-tripping through strings or the generic time.Parse machinery.
// Each ParseXxxBytes mirrors its string counterpart exactly — same
// accepted inputs, same values, same rejections — which the tokenizer
// property tests pin by cross-checking against the string parsers on
// both valid and adversarial inputs. ByteRecordReader composes them
// into a 0-alloc-per-row decode hot path.

// SplitFieldsBytes splits line on the sacct column separator into buf,
// growing the backing array only when a row has more columns than any
// prior one. The returned subslices alias line.
func SplitFieldsBytes(buf [][]byte, line []byte) [][]byte {
	for {
		i := bytes.IndexByte(line, Separator[0])
		if i < 0 {
			return append(buf, line)
		}
		buf = append(buf, line[:i])
		line = line[i+1:]
	}
}

// bstr gives a read-only string view of b without copying. The result
// aliases b and must not be retained or reach any code that stores it;
// it exists so strconv's exact float parsing can run on scratch bytes.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// parseInt64Bytes mirrors strconv.ParseInt(s, 10, 64): optional sign,
// decimal digits only, overflow rejected. ok is false on any deviation.
func parseInt64Bytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	const cutoff = uint64(1) << 63
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		if n > (cutoff-1)/10 {
			return 0, false // would overflow on *10
		}
		n = n*10 + uint64(c-'0')
		if n >= cutoff && !(neg && n == cutoff) {
			return 0, false
		}
	}
	if neg {
		return -int64(n), true
	}
	return int64(n), true
}

// twoDigits decodes b[i:i+2] as a two-digit decimal number, returning
// -1 unless both bytes are digits.
func twoDigits(b []byte, i int) int {
	c0, c1 := b[i], b[i+1]
	if c0 < '0' || c0 > '9' || c1 < '0' || c1 > '9' {
		return -1
	}
	return int(c0-'0')*10 + int(c1-'0')
}

// ParseTimeBytes is ParseTime for byte slices: the canonical 19-byte
// sacct layout is decoded without time.Parse; anything else falls back
// to the string parser so semantics stay identical.
func ParseTimeBytes(b []byte) (time.Time, error) {
	t := bytes.TrimSpace(b)
	if len(t) == 0 || bytes.EqualFold(t, unknownBytes) || bytes.EqualFold(t, noneBytes) {
		return time.Time{}, nil
	}
	// Fast path: "2006-01-02T15:04:05", strictly positional.
	if len(t) == 19 && t[4] == '-' && t[7] == '-' && t[10] == 'T' && t[13] == ':' && t[16] == ':' {
		y1, y2 := twoDigits(t, 0), twoDigits(t, 2)
		mo := twoDigits(t, 5)
		d := twoDigits(t, 8)
		h := twoDigits(t, 11)
		mi := twoDigits(t, 14)
		s := twoDigits(t, 17)
		if y1 >= 0 && y2 >= 0 && mo >= 1 && mo <= 12 && d >= 1 && d <= 31 &&
			h >= 0 && h <= 23 && mi >= 0 && mi <= 59 && s >= 0 && s <= 59 {
			year := y1*100 + y2
			ts := time.Date(year, time.Month(mo), d, h, mi, s, 0, time.UTC)
			// time.Date normalises out-of-range days (Feb 30 → Mar 2);
			// time.Parse rejects them, so verify nothing moved.
			if ts.Day() == d && ts.Month() == time.Month(mo) {
				return ts, nil
			}
		}
	}
	return ParseTime(string(b))
}

var (
	unknownBytes   = []byte("Unknown")
	noneBytes      = []byte("None")
	unlimitedBytes = []byte("UNLIMITED")
	invalidBytes   = []byte("INVALID")
)

// ParseDurationBytes is ParseDuration for byte slices: same accepted
// layouts (MM, MM:SS, HH:MM:SS, D-HH[:MM[:SS]]), same rejections, no
// strings.Split on the hot path.
func ParseDurationBytes(b []byte) (time.Duration, error) {
	t := bytes.TrimSpace(b)
	if len(t) == 0 || bytes.EqualFold(t, unlimitedBytes) || bytes.EqualFold(t, invalidBytes) {
		return 0, fmt.Errorf("slurm: unparseable duration %q", b)
	}
	var days int64
	hadDash := false
	if i := bytes.IndexByte(t, '-'); i >= 0 {
		d, ok := parseInt64Bytes(t[:i])
		if !ok || d < 0 {
			return 0, fmt.Errorf("slurm: bad day count in duration %q", b)
		}
		days, t, hadDash = d, t[i+1:], true
	}
	// Split the remainder on ':' into at most three components.
	var parts [4][]byte
	n := 0
	for rest := t; ; {
		i := bytes.IndexByte(rest, ':')
		if n == len(parts) {
			return 0, fmt.Errorf("slurm: malformed duration %q", b)
		}
		if i < 0 {
			parts[n] = rest
			n++
			break
		}
		parts[n] = rest[:i]
		n++
		rest = rest[i+1:]
	}
	for _, p := range parts[:n] {
		if len(p) == 0 {
			return 0, fmt.Errorf("slurm: empty component in duration %q", b)
		}
	}
	var h, m, sec int64
	ok := true
	switch n {
	case 1:
		// D-HH when a day prefix was present, bare minutes otherwise.
		if days > 0 || hadDash {
			h, ok = parseInt64Bytes(parts[0])
		} else {
			m, ok = parseInt64Bytes(parts[0])
		}
	case 2:
		if hadDash {
			h, ok = parseInt64Bytes(parts[0])
			if ok {
				m, ok = parseInt64Bytes(parts[1])
			}
		} else {
			m, ok = parseInt64Bytes(parts[0])
			if ok {
				sec, ok = parseInt64Bytes(parts[1])
			}
		}
	case 3:
		h, ok = parseInt64Bytes(parts[0])
		if ok {
			m, ok = parseInt64Bytes(parts[1])
		}
		if ok {
			sec, ok = parseInt64Bytes(parts[2])
		}
	default:
		return 0, fmt.Errorf("slurm: malformed duration %q", b)
	}
	if !ok || h < 0 || m < 0 || sec < 0 {
		return 0, fmt.Errorf("slurm: malformed duration %q", b)
	}
	const maxComponent = int64(1) << 33
	if days > maxComponent || h > maxComponent || m > maxComponent {
		return 0, fmt.Errorf("slurm: duration %q out of range", b)
	}
	totalSec := days*86400 + h*3600 + m*60 + sec
	if totalSec > int64(maxDurationSeconds) {
		return 0, fmt.Errorf("slurm: duration %q out of range", b)
	}
	return time.Duration(totalSec) * time.Second, nil
}

const maxDurationSeconds = int64(^uint64(0)>>1) / int64(time.Second)

// ParseCountBytes is ParseCount for byte slices: plain decimal counts
// decode without strconv; K/M/G-suffixed values reuse strconv.ParseFloat
// through a zero-copy view so rounding matches the string parser.
func ParseCountBytes(b []byte) (int64, error) {
	t := bytes.TrimSpace(b)
	if len(t) == 0 {
		return 0, fmt.Errorf("slurm: empty count")
	}
	mult := int64(1)
	switch t[len(t)-1] {
	case 'K', 'k':
		mult, t = 1_000, t[:len(t)-1]
	case 'M', 'm':
		mult, t = 1_000_000, t[:len(t)-1]
	case 'G', 'g':
		mult, t = 1_000_000_000, t[:len(t)-1]
	}
	if mult == 1 {
		n, ok := parseInt64Bytes(t)
		if !ok || n < 0 {
			return 0, fmt.Errorf("slurm: bad count %q", b)
		}
		return n, nil
	}
	f, err := strconv.ParseFloat(bstr(t), 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 || f*float64(mult) > float64(1<<62) {
		return 0, fmt.Errorf("slurm: bad count %q", b)
	}
	return int64(f*float64(mult) + 0.5), nil
}

// ParseMemoryBytes is ParseMemory for byte slices; the n/c qualifier and
// binary unit suffix are stripped positionally and the mantissa reuses
// strconv.ParseFloat through a zero-copy view.
func ParseMemoryBytes(b []byte) (bytesOut int64, perCPU bool, err error) {
	t := bytes.TrimSpace(b)
	if len(t) == 0 || (len(t) == 1 && t[0] == '0') {
		return 0, false, nil
	}
	switch t[len(t)-1] {
	case 'n', 'N':
		t = t[:len(t)-1]
	case 'c', 'C':
		perCPU, t = true, t[:len(t)-1]
	}
	mult := int64(1)
	if len(t) > 0 {
		switch t[len(t)-1] {
		case 'K', 'k':
			mult, t = 1<<10, t[:len(t)-1]
		case 'M', 'm':
			mult, t = 1<<20, t[:len(t)-1]
		case 'G', 'g':
			mult, t = 1<<30, t[:len(t)-1]
		case 'T', 't':
			mult, t = 1<<40, t[:len(t)-1]
		}
	}
	f, ferr := strconv.ParseFloat(bstr(t), 64)
	if ferr != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 || f*float64(mult) > float64(1<<62) {
		return 0, false, fmt.Errorf("slurm: bad memory size %q", b)
	}
	return int64(f * float64(mult)), perCPU, nil
}

var (
	batchBytes  = []byte("batch")
	externBytes = []byte("extern")
)

// ParseJobIDBytes is ParseJobID for byte slices.
func ParseJobIDBytes(b []byte) (JobID, error) {
	t := bytes.TrimSpace(b)
	id := JobID{Array: -1}
	if len(t) == 0 {
		return id, fmt.Errorf("slurm: empty job id")
	}
	var stepPart []byte
	if i := bytes.IndexByte(t, '.'); i >= 0 {
		t, stepPart = t[:i], t[i+1:]
	}
	if i := bytes.IndexByte(t, '_'); i >= 0 {
		a, ok := parseInt64Bytes(t[i+1:])
		if !ok || a < 0 {
			return id, fmt.Errorf("slurm: bad array index in job id %q", b)
		}
		id.Array, t = a, t[:i]
	}
	j, ok := parseInt64Bytes(t)
	if !ok || j <= 0 {
		return id, fmt.Errorf("slurm: bad job id %q", b)
	}
	id.Job = j
	switch {
	case len(stepPart) == 0:
		id.Kind = StepJob
	case bytes.Equal(stepPart, batchBytes):
		id.Kind = StepBatch
	case bytes.Equal(stepPart, externBytes):
		id.Kind = StepExtern
	default:
		n, ok := parseInt64Bytes(stepPart)
		if !ok || n < 0 {
			return id, fmt.Errorf("slurm: bad step in job id %q", b)
		}
		id.Kind, id.Step = StepNumbered, n
	}
	return id, nil
}

// stateIndex maps the canonical (upper-case) state spellings for the
// byte decoder's map fast path; misses fall back to ParseState.
var stateIndex = func() map[string]State {
	m := make(map[string]State, len(stateNames))
	for i, name := range stateNames {
		m[name] = State(i)
	}
	return m
}()

var cancelledBytes = []byte("CANCELLED")

// ParseStateBytes is ParseState for byte slices: canonical spellings hit
// a map lookup; "CANCELLED by <uid>" and case variants take the string
// slow path so semantics stay identical.
func ParseStateBytes(b []byte) (State, error) {
	t := bytes.TrimSpace(b)
	if st, ok := stateIndex[string(t)]; ok { // no alloc: map lookup on []byte key
		return st, nil
	}
	if bytes.HasPrefix(t, cancelledBytes) {
		return StateCancelled, nil
	}
	return ParseState(string(b))
}

// ParseExitCodeBytes is ParseExitCode for byte slices.
func ParseExitCodeBytes(b []byte) (exit, signal int, err error) {
	t := bytes.TrimSpace(b)
	if len(t) == 0 {
		return 0, 0, nil
	}
	i := bytes.IndexByte(t, ':')
	if i < 0 {
		e, ok := parseInt64Bytes(t)
		if !ok || e != int64(int(e)) {
			return 0, 0, fmt.Errorf("slurm: bad exit code %q", b)
		}
		return int(e), 0, nil
	}
	e, ok1 := parseInt64Bytes(t[:i])
	sig, ok2 := parseInt64Bytes(t[i+1:])
	if !ok1 || !ok2 || e != int64(int(e)) || sig != int64(int(sig)) {
		return 0, 0, fmt.Errorf("slurm: bad exit code %q", b)
	}
	return int(e), int(sig), nil
}
