package slurm

import (
	"strings"
	"testing"
)

// FuzzParseDuration checks the duration parser never panics and that
// every accepted value re-parses to the same duration after formatting.
func FuzzParseDuration(f *testing.F) {
	for _, seed := range []string{
		"00:00:00", "1-02:03:04", "90", "05:30", "2-12", "UNLIMITED",
		"", "x", "1:2:3:4", "-5", "999999999-00:00:00",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDuration(s)
		if err != nil {
			return
		}
		if d < 0 {
			t.Fatalf("ParseDuration(%q) accepted a negative duration %v", s, d)
		}
		got, err := ParseDuration(FormatDuration(d))
		if err != nil {
			t.Fatalf("formatted duration %q does not re-parse: %v", FormatDuration(d), err)
		}
		if got != d {
			t.Fatalf("round trip drift: %v → %q → %v", d, FormatDuration(d), got)
		}
	})
}

// FuzzParseJobID checks the job-id parser never panics and accepted ids
// round-trip exactly.
func FuzzParseJobID(f *testing.F) {
	for _, seed := range []string{
		"12345", "12345.batch", "12345.extern", "12345.0", "7_3", "7_3.2",
		"", "abc", "1_", "_1", "1.", ".", "1_2_3", "1.x",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		id, err := ParseJobID(s)
		if err != nil {
			return
		}
		back, err := ParseJobID(id.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", id.String(), err)
		}
		if back != id {
			t.Fatalf("round trip drift: %q → %v → %v", s, id, back)
		}
	})
}

// FuzzParseMemory checks the memory parser never panics and stays
// non-negative.
func FuzzParseMemory(f *testing.F) {
	for _, seed := range []string{"0", "4000M", "512Gn", "2Gc", "1.5K", "1T", "", "xyz", "9e99G"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		b, _, err := ParseMemory(s)
		if err != nil {
			return
		}
		if b < 0 {
			t.Fatalf("ParseMemory(%q) = %d", s, b)
		}
	})
}

// FuzzDecodeRecord feeds arbitrary pipe rows through the full decoder: it
// must reject or accept without panicking, and whatever it accepts must
// re-encode to the identical row.
func FuzzDecodeRecord(f *testing.F) {
	fields := []string{"JobID", "User", "State", "Elapsed", "NNodes", "Submit", "Flags"}
	f.Add("100001|alice|COMPLETED|01:30:00|128|2024-03-01T08:00:00|SchedBackfill")
	f.Add("100002|bob|FAILED|00:10:00|9.4K|2024-03-01T09:00:00|")
	f.Add("|||||")
	f.Add("100003|x|NOT_A_STATE|x|x|x|x")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := DecodeRecord(line, fields)
		if err != nil {
			return
		}
		out, err := EncodeRecord(rec, fields)
		if err != nil {
			t.Fatalf("accepted row does not re-encode: %v", err)
		}
		// Re-decoding the canonical encoding must succeed and agree.
		rec2, err := DecodeRecord(out, fields)
		if err != nil {
			t.Fatalf("canonical row %q rejected: %v", out, err)
		}
		if rec2.ID != rec.ID || rec2.State != rec.State || rec2.NNodes != rec.NNodes {
			t.Fatalf("decode drift on %q", line)
		}
	})
}

// FuzzExpandNodeList checks the hostlist expander never panics and agrees
// with the counter on accepted inputs.
func FuzzExpandNodeList(f *testing.F) {
	for _, seed := range []string{
		"frontier[000001-000003]", "a01,b[02-03]", "n[5]", "", "a[1", "a[5-2]", "x[0-100000]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if strings.Count(s, "-") > 4 || len(s) > 64 {
			return // bound expansion size for fuzz throughput
		}
		names, err := ExpandNodeList(s)
		if err != nil {
			return
		}
		n, err := NodeListCount(s)
		if err != nil {
			t.Fatalf("expanded but not countable: %q (%v)", s, err)
		}
		if n != len(names) {
			t.Fatalf("count mismatch on %q: %d vs %d", s, n, len(names))
		}
	})
}
