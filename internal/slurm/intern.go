package slurm

// Interner deduplicates strings: one allocation per distinct value, not
// per sighting. It backs the zero-alloc byte decoder's free-form string
// columns and the columnar store's dictionary decode, so a user name
// appearing in twelve month shards materialises as one shared string.
// An Interner is not safe for concurrent use; give each decoder its own
// or serialise access externally.
type Interner struct {
	m map[string]string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string)}
}

// Intern returns a string with b's bytes, allocating only on the first
// sighting of a value (while the cache has room). Past internCap the
// interner keeps returning correct strings but stops caching new ones.
func (in *Interner) Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in.m[string(b)]; ok { // no alloc: map lookup on []byte key
		return s
	}
	s := string(b)
	if len(in.m) < internCap {
		in.m[s] = s
	}
	return s
}

// InternString deduplicates an already-materialised string, so decoded
// values that arrive as strings share storage with byte-path values.
func (in *Interner) InternString(s string) string {
	if s == "" {
		return ""
	}
	if v, ok := in.m[s]; ok {
		return v
	}
	if len(in.m) < internCap {
		in.m[s] = s
	}
	return s
}

// Len returns the number of cached distinct values.
func (in *Interner) Len() int { return len(in.m) }
