package slurm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TRES is a trackable-resources map as encoded in fields like TRESReq and
// TRESUsageInAve: "cpu=56,mem=512G,node=2,gres/gpu=8". Values are stored in
// base units (bytes for mem-like resources, plain counts otherwise).
type TRES map[string]int64

// memLike reports whether a TRES key carries a byte quantity.
func memLike(key string) bool {
	return key == "mem" || strings.HasSuffix(key, "/mem") || key == "vmem"
}

// ParseTRES parses a TRES string. An empty string yields an empty map.
func ParseTRES(s string) (TRES, error) {
	out := TRES{}
	t := strings.TrimSpace(s)
	if t == "" {
		return out, nil
	}
	for _, kv := range strings.Split(t, ",") {
		i := strings.IndexByte(kv, '=')
		if i <= 0 {
			return nil, fmt.Errorf("slurm: malformed TRES entry %q in %q", kv, s)
		}
		key, val := strings.TrimSpace(kv[:i]), strings.TrimSpace(kv[i+1:])
		var n int64
		if memLike(key) {
			b, _, err := ParseMemory(val)
			if err != nil {
				return nil, fmt.Errorf("slurm: bad TRES memory %q: %v", kv, err)
			}
			n = b
		} else {
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("slurm: bad TRES count %q", kv)
			}
			n = int64(v)
		}
		out[key] = n
	}
	return out, nil
}

// String renders the map with keys sorted, the canonical Slurm encoding.
func (t TRES) String() string {
	if len(t) == 0 {
		return ""
	}
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		if memLike(k) {
			parts = append(parts, k+"="+strings.TrimSuffix(FormatMemory(t[k], false), "n"))
		} else {
			parts = append(parts, k+"="+strconv.FormatInt(t[k], 10))
		}
	}
	return strings.Join(parts, ",")
}

// Get returns the value for key, or 0 when absent.
func (t TRES) Get(key string) int64 { return t[key] }

// Clone returns a deep copy.
func (t TRES) Clone() TRES {
	out := make(TRES, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}
