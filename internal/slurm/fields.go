package slurm

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Category groups accounting fields the way Table 1 of the paper does.
type Category string

// The nine Table 1 categories, plus the bucket for the fields the study
// excluded as redundant, sensitive, or uninformative.
const (
	CatIdentification Category = "Job Identification"
	CatTiming         Category = "Timing Information"
	CatRequests       Category = "Resource Requests"
	CatUsage          Category = "Resource Usage"
	CatIO             Category = "IO Related"
	CatState          Category = "Job State"
	CatScheduling     Category = "Scheduling Metadata"
	CatSpecial        Category = "Special Indicators"
	CatMisc           Category = "Misc"
	CatExcluded       Category = "Excluded"
)

// Categories returns the selected categories in Table 1 order.
func Categories() []Category {
	return []Category{
		CatIdentification, CatTiming, CatRequests, CatUsage, CatIO,
		CatState, CatScheduling, CatSpecial, CatMisc,
	}
}

// Field describes one accounting column: its Table 1 category and the
// accessors that render and parse its text form in sacct output.
// SetBytes, when non-nil, is the zero-alloc decode fast path used by
// ByteRecordReader; it must accept exactly the inputs Set accepts and
// must not retain the byte slice. Fields without one (free-form string
// columns) are decoded through Set on an interned copy of the cell.
type Field struct {
	Name     string
	Category Category
	Doc      string
	Get      func(*Record) string
	Set      func(*Record, string) error
	SetBytes func(*Record, []byte) error
}

func intField(get func(*Record) int64, set func(*Record, int64)) (func(*Record) string, func(*Record, string) error, func(*Record, []byte) error) {
	return func(r *Record) string { return strconv.FormatInt(get(r), 10) },
		func(r *Record, s string) error {
			n, err := ParseCount(s)
			if err != nil {
				return err
			}
			set(r, n)
			return nil
		},
		func(r *Record, b []byte) error {
			n, err := ParseCountBytes(b)
			if err != nil {
				return err
			}
			set(r, n)
			return nil
		}
}

func strField(get func(*Record) string, set func(*Record, string)) (func(*Record) string, func(*Record, string) error) {
	return get, func(r *Record, s string) error { set(r, s); return nil }
}

// catalogue is the ordered Table 1 selection. Built once at init.
var catalogue []Field

// fieldIndex maps lower-cased field names to catalogue entries.
var fieldIndex map[string]*Field

func addField(f Field) {
	catalogue = append(catalogue, f)
}

// flagsField is the one catalogue entry ByteRecordReader special-cases:
// its Set splits a flag list per call, so the byte decoder swaps in a
// cached pre-split slice instead.
var flagsField *Field

func init() {
	defineFields()
	fieldIndex = make(map[string]*Field, len(catalogue))
	for i := range catalogue {
		fieldIndex[strings.ToLower(catalogue[i].Name)] = &catalogue[i]
	}
	flagsField = fieldIndex["flags"]
}

func defineFields() {
	// --- Job Identification ---
	addField(Field{Name: "JobID", Category: CatIdentification,
		Doc: "job, array-task, or step identifier",
		Get: func(r *Record) string { return r.ID.String() },
		Set: func(r *Record, s string) error {
			id, err := ParseJobID(s)
			if err != nil {
				return err
			}
			r.ID = id
			return nil
		},
		SetBytes: func(r *Record, b []byte) error {
			id, err := ParseJobIDBytes(b)
			if err != nil {
				return err
			}
			r.ID = id
			return nil
		}})
	g, s := strField(func(r *Record) string { return r.JobName }, func(r *Record, v string) { r.JobName = v })
	addField(Field{Name: "JobName", Category: CatIdentification, Doc: "user-supplied job name", Get: g, Set: s})
	g, s = strField(func(r *Record) string { return r.User }, func(r *Record, v string) { r.User = v })
	addField(Field{Name: "User", Category: CatIdentification, Doc: "submitting user", Get: g, Set: s})
	gi, si, sbi := intField(func(r *Record) int64 { return r.UID }, func(r *Record, v int64) { r.UID = v })
	addField(Field{Name: "UID", Category: CatIdentification, Doc: "submitting user id", Get: gi, Set: si, SetBytes: sbi})
	g, s = strField(func(r *Record) string { return r.Group }, func(r *Record, v string) { r.Group = v })
	addField(Field{Name: "Group", Category: CatIdentification, Doc: "submitting group", Get: g, Set: s})
	g, s = strField(func(r *Record) string { return r.Account }, func(r *Record, v string) { r.Account = v })
	addField(Field{Name: "Account", Category: CatIdentification, Doc: "charge account (project)", Get: g, Set: s})
	g, s = strField(func(r *Record) string { return r.Cluster }, func(r *Record, v string) { r.Cluster = v })
	addField(Field{Name: "Cluster", Category: CatIdentification, Doc: "cluster name", Get: g, Set: s})
	g, s = strField(func(r *Record) string { return r.Partition }, func(r *Record, v string) { r.Partition = v })
	addField(Field{Name: "Partition", Category: CatIdentification, Doc: "partition the job ran in", Get: g, Set: s})
	g, s = strField(func(r *Record) string { return r.Reservation }, func(r *Record, v string) { r.Reservation = v })
	addField(Field{Name: "Reservation", Category: CatIdentification, Doc: "advance reservation name", Get: g, Set: s})
	gi, si, sbi = intField(func(r *Record) int64 { return r.ReservationID }, func(r *Record, v int64) { r.ReservationID = v })
	addField(Field{Name: "ReservationID", Category: CatIdentification, Doc: "advance reservation id", Get: gi, Set: si, SetBytes: sbi})

	// --- Timing Information ---
	addTimestamp("Submit", CatTiming, "submission time",
		func(r *Record) *timeRef { return (*timeRef)(&r.Submit) })
	addTimestamp("Start", CatTiming, "dispatch time",
		func(r *Record) *timeRef { return (*timeRef)(&r.Start) })
	addTimestamp("End", CatTiming, "termination time",
		func(r *Record) *timeRef { return (*timeRef)(&r.End) })
	addDuration("Elapsed", CatTiming, "wall-clock runtime",
		func(r *Record) *durRef { return (*durRef)(&r.Elapsed) })
	addDuration("Timelimit", CatTiming, "requested walltime limit",
		func(r *Record) *durRef { return (*durRef)(&r.Timelimit) })

	// --- Resource Requests ---
	gi, si, sbi = intField(func(r *Record) int64 { return r.NNodes }, func(r *Record, v int64) { r.NNodes = v })
	addField(Field{Name: "NNodes", Category: CatRequests, Doc: "allocated node count", Get: gi, Set: si, SetBytes: sbi})
	gi, si, sbi = intField(func(r *Record) int64 { return r.NCPUs }, func(r *Record, v int64) { r.NCPUs = v })
	addField(Field{Name: "NCPUS", Category: CatRequests, Doc: "allocated CPU count", Get: gi, Set: si, SetBytes: sbi})
	gi, si, sbi = intField(func(r *Record) int64 { return r.NTasks }, func(r *Record, v int64) { r.NTasks = v })
	addField(Field{Name: "NTasks", Category: CatRequests, Doc: "task count (steps)", Get: gi, Set: si, SetBytes: sbi})
	gi, si, sbi = intField(func(r *Record) int64 { return r.ReqNodes }, func(r *Record, v int64) { r.ReqNodes = v })
	addField(Field{Name: "ReqNodes", Category: CatRequests, Doc: "requested node count", Get: gi, Set: si, SetBytes: sbi})
	gi, si, sbi = intField(func(r *Record) int64 { return r.ReqCPUs }, func(r *Record, v int64) { r.ReqCPUs = v })
	addField(Field{Name: "ReqCPUS", Category: CatRequests, Doc: "requested CPU count", Get: gi, Set: si, SetBytes: sbi})
	addField(Field{Name: "ReqMem", Category: CatRequests, Doc: "requested memory",
		Get: func(r *Record) string { return FormatMemory(r.ReqMem, r.ReqMemPerCPU) },
		Set: func(r *Record, s string) error {
			b, perCPU, err := ParseMemory(s)
			if err != nil {
				return err
			}
			r.ReqMem, r.ReqMemPerCPU = b, perCPU
			return nil
		},
		SetBytes: func(r *Record, b []byte) error {
			v, perCPU, err := ParseMemoryBytes(b)
			if err != nil {
				return err
			}
			r.ReqMem, r.ReqMemPerCPU = v, perCPU
			return nil
		}})
	g, s = strField(func(r *Record) string { return r.ReqGRES }, func(r *Record, v string) { r.ReqGRES = v })
	addField(Field{Name: "ReqGRES", Category: CatRequests, Doc: "requested generic resources (GPUs)", Get: g, Set: s})
	g, s = strField(func(r *Record) string { return r.Licenses }, func(r *Record, v string) { r.Licenses = v })
	addField(Field{Name: "Licenses", Category: CatRequests, Doc: "requested software licenses", Get: g, Set: s})
	g, s = strField(func(r *Record) string { return r.Layout }, func(r *Record, v string) { r.Layout = v })
	addField(Field{Name: "Layout", Category: CatRequests, Doc: "step task layout", Get: g, Set: s})

	// --- Resource Usage ---
	addBytes("VMSize", CatUsage, "virtual memory high-water mark",
		func(r *Record) *int64 { return &r.VMSize })
	addBytes("MaxVMSize", CatUsage, "maximum virtual memory of any task",
		func(r *Record) *int64 { return &r.MaxVMSize })
	addDuration("AveCPU", CatUsage, "average CPU time per task",
		func(r *Record) *durRef { return (*durRef)(&r.AveCPU) })
	addBytes("MaxRSS", CatUsage, "maximum resident set size",
		func(r *Record) *int64 { return &r.MaxRSS })
	addBytes("AveRSS", CatUsage, "average resident set size",
		func(r *Record) *int64 { return &r.AveRSS })
	gi, si, sbi = intField(func(r *Record) int64 { return r.AvePages }, func(r *Record, v int64) { r.AvePages = v })
	addField(Field{Name: "AvePages", Category: CatUsage, Doc: "average page faults per task", Get: gi, Set: si, SetBytes: sbi})
	addDuration("TotalCPU", CatUsage, "total consumed CPU time",
		func(r *Record) *durRef { return (*durRef)(&r.TotalCPU) })
	addDuration("UserCPU", CatUsage, "user-mode CPU time",
		func(r *Record) *durRef { return (*durRef)(&r.UserCPU) })
	addDuration("SystemCPU", CatUsage, "kernel-mode CPU time",
		func(r *Record) *durRef { return (*durRef)(&r.SystemCPU) })
	g, s = strField(func(r *Record) string { return r.NodeList }, func(r *Record, v string) { r.NodeList = v })
	addField(Field{Name: "NodeList", Category: CatUsage, Doc: "allocated node list", Get: g, Set: s})
	gi, si, sbi = intField(func(r *Record) int64 { return r.ConsumedEnergy }, func(r *Record, v int64) { r.ConsumedEnergy = v })
	addField(Field{Name: "ConsumedEnergy", Category: CatUsage, Doc: "energy consumed (J)", Get: gi, Set: si, SetBytes: sbi})

	// --- IO Related ---
	g, s = strField(func(r *Record) string { return r.WorkDir }, func(r *Record, v string) { r.WorkDir = v })
	addField(Field{Name: "WorkDir", Category: CatIO, Doc: "working directory", Get: g, Set: s})
	addBytes("AveDiskRead", CatIO, "average bytes read per task", func(r *Record) *int64 { return &r.AveDiskRead })
	addBytes("AveDiskWrite", CatIO, "average bytes written per task", func(r *Record) *int64 { return &r.AveDiskWrite })
	addBytes("MaxDiskRead", CatIO, "maximum bytes read by a task", func(r *Record) *int64 { return &r.MaxDiskRead })
	addBytes("MaxDiskWrite", CatIO, "maximum bytes written by a task", func(r *Record) *int64 { return &r.MaxDiskWrite })

	// --- Job State ---
	addField(Field{Name: "State", Category: CatState, Doc: "terminal job state",
		Get: func(r *Record) string { return r.State.String() },
		Set: func(r *Record, s string) error {
			st, err := ParseState(s)
			if err != nil {
				return err
			}
			r.State = st
			return nil
		},
		SetBytes: func(r *Record, b []byte) error {
			st, err := ParseStateBytes(b)
			if err != nil {
				return err
			}
			r.State = st
			return nil
		}})
	addField(Field{Name: "ExitCode", Category: CatState, Doc: "exit:signal pair",
		Get: func(r *Record) string { return FormatExitCode(r.ExitCode, r.ExitSignal) },
		Set: func(r *Record, s string) error {
			e, sig, err := ParseExitCode(s)
			if err != nil {
				return err
			}
			r.ExitCode, r.ExitSignal = e, sig
			return nil
		},
		SetBytes: func(r *Record, b []byte) error {
			e, sig, err := ParseExitCodeBytes(b)
			if err != nil {
				return err
			}
			r.ExitCode, r.ExitSignal = e, sig
			return nil
		}})
	g, s = strField(func(r *Record) string { return r.DerivedExitCode }, func(r *Record, v string) { r.DerivedExitCode = v })
	addField(Field{Name: "DerivedExitCode", Category: CatState, Doc: "highest exit code of any step", Get: g, Set: s})
	g, s = strField(func(r *Record) string { return r.Reason }, func(r *Record, v string) { r.Reason = v })
	addField(Field{Name: "Reason", Category: CatState, Doc: "pending/termination reason", Get: g, Set: s})
	addDuration("Suspended", CatState, "time spent suspended",
		func(r *Record) *durRef { return (*durRef)(&r.Suspended) })
	gi, si, sbi = intField(func(r *Record) int64 { return r.Restarts }, func(r *Record, v int64) { r.Restarts = v })
	addField(Field{Name: "Restarts", Category: CatState, Doc: "requeue/restart count", Get: gi, Set: si, SetBytes: sbi})
	g, s = strField(func(r *Record) string { return r.Constraints }, func(r *Record, v string) { r.Constraints = v })
	addField(Field{Name: "Constraints", Category: CatState, Doc: "node feature constraints", Get: g, Set: s})

	// --- Scheduling Metadata ---
	gi, si, sbi = intField(func(r *Record) int64 { return r.Priority }, func(r *Record, v int64) { r.Priority = v })
	addField(Field{Name: "Priority", Category: CatScheduling, Doc: "multifactor priority at dispatch", Get: gi, Set: si, SetBytes: sbi})
	addTimestamp("Eligible", CatScheduling, "time the job became eligible to run",
		func(r *Record) *timeRef { return (*timeRef)(&r.Eligible) })
	g, s = strField(func(r *Record) string { return r.QOS }, func(r *Record, v string) { r.QOS = v })
	addField(Field{Name: "QOS", Category: CatScheduling, Doc: "quality of service", Get: g, Set: s})
	g, s = strField(func(r *Record) string { return r.QOSReq }, func(r *Record, v string) { r.QOSReq = v })
	addField(Field{Name: "QOSReq", Category: CatScheduling, Doc: "requested quality of service", Get: g, Set: s})
	addField(Field{Name: "Flags", Category: CatScheduling, Doc: "scheduler flags (SchedBackfill, SchedMain)",
		Get: func(r *Record) string { return r.flagString() },
		Set: func(r *Record, s string) error { r.setFlags(s); return nil }})
	addField(Field{Name: "TRESUsageInAve", Category: CatScheduling, Doc: "average trackable-resource usage",
		Get: func(r *Record) string { return r.TRESUsageInAve.String() },
		Set: func(r *Record, s string) error {
			t, err := ParseTRES(s)
			if err != nil {
				return err
			}
			r.TRESUsageInAve = t
			return nil
		},
		SetBytes: func(r *Record, b []byte) error {
			if len(bytes.TrimSpace(b)) == 0 {
				r.TRESUsageInAve = nil // renders identically to an empty map
				return nil
			}
			t, err := ParseTRES(string(b))
			if err != nil {
				return err
			}
			r.TRESUsageInAve = t
			return nil
		}})
	addField(Field{Name: "ReqTRES", Category: CatScheduling, Doc: "requested trackable resources",
		Get: func(r *Record) string { return r.TRESReq.String() },
		Set: func(r *Record, s string) error {
			t, err := ParseTRES(s)
			if err != nil {
				return err
			}
			r.TRESReq = t
			return nil
		},
		SetBytes: func(r *Record, b []byte) error {
			if len(bytes.TrimSpace(b)) == 0 {
				r.TRESReq = nil // renders identically to an empty map
				return nil
			}
			t, err := ParseTRES(string(b))
			if err != nil {
				return err
			}
			r.TRESReq = t
			return nil
		}})

	// --- Special Indicators ---
	addField(Field{Name: "Backfill", Category: CatSpecial,
		Doc: "1 when the backfill scheduler started the job (derived from Flags)",
		Get: func(r *Record) string {
			if r.Backfilled() {
				return "1"
			}
			return "0"
		},
		Set: func(r *Record, s string) error {
			switch strings.TrimSpace(s) {
			case "1", "true":
				if !r.Backfilled() {
					r.Flags = append(r.Flags, FlagBackfill)
				}
			case "0", "false", "":
			default:
				return fmt.Errorf("slurm: bad Backfill value %q", s)
			}
			return nil
		},
		SetBytes: func(r *Record, b []byte) error {
			switch string(bytes.TrimSpace(b)) { // no alloc: switch on []byte conversion
			case "1", "true":
				if !r.Backfilled() {
					r.Flags = append(r.Flags, FlagBackfill)
				}
			case "0", "false", "":
			default:
				return fmt.Errorf("slurm: bad Backfill value %q", b)
			}
			return nil
		}})
	g, s = strField(func(r *Record) string { return r.Dependency }, func(r *Record, v string) { r.Dependency = v })
	addField(Field{Name: "Dependency", Category: CatSpecial, Doc: "job dependency expression", Get: g, Set: s})
	gi, si, sbi = intField(func(r *Record) int64 { return r.ArrayJobID }, func(r *Record, v int64) { r.ArrayJobID = v })
	addField(Field{Name: "ArrayJobID", Category: CatSpecial, Doc: "parent array job id (0 when none)", Get: gi, Set: si, SetBytes: sbi})

	// --- Misc ---
	g, s = strField(func(r *Record) string { return r.Comment }, func(r *Record, v string) { r.Comment = v })
	addField(Field{Name: "Comment", Category: CatMisc, Doc: "user comment", Get: g, Set: s})
	g, s = strField(func(r *Record) string { return r.SystemComment }, func(r *Record, v string) { r.SystemComment = v })
	addField(Field{Name: "SystemComment", Category: CatMisc, Doc: "system comment", Get: g, Set: s})
	g, s = strField(func(r *Record) string { return r.AdminComment }, func(r *Record, v string) { r.AdminComment = v })
	addField(Field{Name: "AdminComment", Category: CatMisc, Doc: "administrator comment", Get: g, Set: s})
}

// timeRef and durRef give the generic field adders addressable views of
// Record members without one hand-written closure pair per field.
type (
	timeRef time.Time
	durRef  time.Duration
)

func addTimestamp(name string, cat Category, doc string, ref func(*Record) *timeRef) {
	addField(Field{Name: name, Category: cat, Doc: doc,
		Get: func(r *Record) string { return FormatTime(time.Time(*ref(r))) },
		Set: func(r *Record, s string) error {
			t, err := ParseTime(s)
			if err != nil {
				return err
			}
			*ref(r) = timeRef(t)
			return nil
		},
		SetBytes: func(r *Record, b []byte) error {
			t, err := ParseTimeBytes(b)
			if err != nil {
				return err
			}
			*ref(r) = timeRef(t)
			return nil
		}})
}

func addDuration(name string, cat Category, doc string, ref func(*Record) *durRef) {
	addField(Field{Name: name, Category: cat, Doc: doc,
		Get: func(r *Record) string { return FormatDuration(time.Duration(*ref(r))) },
		Set: func(r *Record, s string) error {
			d, err := ParseDuration(s)
			if err != nil {
				return err
			}
			*ref(r) = durRef(d)
			return nil
		},
		SetBytes: func(r *Record, b []byte) error {
			d, err := ParseDurationBytes(b)
			if err != nil {
				return err
			}
			*ref(r) = durRef(d)
			return nil
		}})
}

func addBytes(name string, cat Category, doc string, ref func(*Record) *int64) {
	addField(Field{Name: name, Category: cat, Doc: doc,
		Get: func(r *Record) string { return strings.TrimSuffix(FormatMemory(*ref(r), false), "n") },
		Set: func(r *Record, s string) error {
			b, _, err := ParseMemory(s)
			if err != nil {
				return err
			}
			*ref(r) = b
			return nil
		},
		SetBytes: func(r *Record, b []byte) error {
			v, _, err := ParseMemoryBytes(b)
			if err != nil {
				return err
			}
			*ref(r) = v
			return nil
		}})
}

// Catalogue returns the curated Table 1 field selection in canonical
// order. The returned slice is a copy; the Field values share accessors.
func Catalogue() []Field {
	out := make([]Field, len(catalogue))
	copy(out, catalogue)
	return out
}

// FieldByName looks up a field case-insensitively.
func FieldByName(name string) (Field, bool) {
	f, ok := fieldIndex[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Field{}, false
	}
	return *f, true
}

// SelectedNames returns the names of the curated field selection in order.
func SelectedNames() []string {
	out := make([]string, len(catalogue))
	for i := range catalogue {
		out[i] = catalogue[i].Name
	}
	return out
}

// FieldsInCategory returns the selected fields belonging to cat, in order.
func FieldsInCategory(cat Category) []Field {
	var out []Field
	for _, f := range catalogue {
		if f.Category == cat {
			out = append(out, f)
		}
	}
	return out
}

// excludedFields lists the remainder of the sacct field universe — columns
// the study dropped as redundant (raw duplicates of formatted fields),
// sensitive, or uninformative. Together with the catalogue they form the
// 118-column universe Table 1 selects from.
var excludedFields = []string{
	"AllocCPUS", "AllocNodes", "AllocTRES", "AssocID", "AveCPUFreq",
	"AveVMSize", "BlockID", "Container", "CPUTime", "CPUTimeRAW",
	"DBIndex", "ElapsedRaw", "Extra", "FailedNode", "GID",
	"JobIDRaw", "StdOut", "MaxDiskReadNode", "MaxDiskReadTask", "MaxDiskWriteNode",
	"MaxDiskWriteTask", "MaxPages", "MaxPagesNode", "MaxPagesTask", "MaxRSSNode",
	"MaxRSSTask", "MaxVMSizeNode", "MaxVMSizeTask", "McsLabel", "MinCPU",
	"MinCPUNode", "MinCPUTask", "Planned", "PlannedCPU", "PlannedCPURAW",
	"QOSRAW", "ReqCPUFreq", "ReqCPUFreqGov", "ReqCPUFreqMax", "ReqCPUFreqMin",
	"Reserved", "ResvCPU", "ResvCPURAW", "SubmitLine", "TimelimitRaw",
	"TRESUsageInMax", "TRESUsageInMaxNode", "TRESUsageInMaxTask", "TRESUsageInMin", "TRESUsageInMinNode",
	"TRESUsageInMinTask", "TRESUsageInTot", "TRESUsageOutAve", "TRESUsageOutMax", "TRESUsageOutTot",
	"WCKey", "WCKeyID", "ConsumedEnergyRaw",
}

// AllFieldNames returns the full accounting column universe: the curated
// selection plus the excluded remainder.
func AllFieldNames() []string {
	out := make([]string, 0, len(catalogue)+len(excludedFields))
	out = append(out, SelectedNames()...)
	out = append(out, excludedFields...)
	return out
}
