package slurm

import (
	"testing"
	"testing/quick"
	"time"
)

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"00:00:00", 0},
		{"00:01:30", 90 * time.Second},
		{"02:03:04", 2*time.Hour + 3*time.Minute + 4*time.Second},
		{"1-02:03:04", 26*time.Hour + 3*time.Minute + 4*time.Second},
		{"10-00:00:00", 240 * time.Hour},
		{"05:30", 5*time.Minute + 30*time.Second},
		{"2-12", 60 * time.Hour},
		{"2-12:30", 60*time.Hour + 30*time.Minute},
		{"90", 90 * time.Minute},
		{" 01:00:00 ", time.Hour},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Errorf("ParseDuration(%q): unexpected error %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseDurationErrors(t *testing.T) {
	for _, in := range []string{"", "UNLIMITED", "INVALID", "x:y:z", "1-", "-5", "1:2:3:4", "::", "1:-2"} {
		if _, err := ParseDuration(in); err == nil {
			t.Errorf("ParseDuration(%q): want error, got nil", in)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want string
	}{
		{0, "00:00:00"},
		{90 * time.Second, "00:01:30"},
		{26*time.Hour + 3*time.Minute + 4*time.Second, "1-02:03:04"},
		{-time.Hour, "00:00:00"},
		{time.Second + 500*time.Millisecond, "00:00:01"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.in); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Round-tripping any non-negative whole-second duration through
// Format/Parse must be the identity.
func TestDurationRoundTripProperty(t *testing.T) {
	f := func(secs uint32) bool {
		d := time.Duration(secs) * time.Second
		got, err := ParseDuration(FormatDuration(d))
		return err == nil && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseTime(t *testing.T) {
	ts, err := ParseTime("2024-03-15T10:30:00")
	if err != nil {
		t.Fatalf("ParseTime: %v", err)
	}
	want := time.Date(2024, 3, 15, 10, 30, 0, 0, time.UTC)
	if !ts.Equal(want) {
		t.Errorf("ParseTime = %v, want %v", ts, want)
	}
	for _, in := range []string{"Unknown", "None", ""} {
		z, err := ParseTime(in)
		if err != nil || !z.IsZero() {
			t.Errorf("ParseTime(%q) = %v, %v; want zero, nil", in, z, err)
		}
	}
	if _, err := ParseTime("2024-13-40T99:99:99"); err == nil {
		t.Error("ParseTime(garbage): want error")
	}
}

func TestFormatTimeZero(t *testing.T) {
	if got := FormatTime(time.Time{}); got != "Unknown" {
		t.Errorf("FormatTime(zero) = %q, want Unknown", got)
	}
	ts := time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)
	if got := FormatTime(ts); got != "2023-04-01T00:00:00" {
		t.Errorf("FormatTime = %q", got)
	}
}

func TestTimeRoundTripProperty(t *testing.T) {
	f := func(offset uint32) bool {
		ts := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(offset) * time.Second)
		got, err := ParseTime(FormatTime(ts))
		return err == nil && got.Equal(ts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
