package slurm

import (
	"strings"
	"time"
)

// Record is one sacct accounting row: either a job or one of its steps.
// Fields are the typed forms of the Table 1 selection; text encoding and
// decoding go through the field registry in fields.go.
type Record struct {
	// Job identification.
	ID            JobID
	JobName       string
	User          string
	UID           int64
	Group         string
	Account       string
	Partition     string
	Cluster       string
	Reservation   string
	ReservationID int64

	// Timing.
	Submit    time.Time
	Eligible  time.Time
	Start     time.Time
	End       time.Time
	Elapsed   time.Duration
	Timelimit time.Duration

	// Resource requests.
	NNodes       int64
	NCPUs        int64
	NTasks       int64
	ReqNodes     int64
	ReqCPUs      int64
	ReqMem       int64 // bytes
	ReqMemPerCPU bool
	ReqGRES      string
	Licenses     string
	Layout       string

	// Resource usage.
	VMSize         int64 // bytes
	MaxVMSize      int64 // bytes
	AveCPU         time.Duration
	MaxRSS         int64 // bytes
	AveRSS         int64 // bytes
	AvePages       int64
	TotalCPU       time.Duration
	UserCPU        time.Duration
	SystemCPU      time.Duration
	NodeList       string
	ConsumedEnergy int64 // joules

	// IO.
	WorkDir      string
	AveDiskRead  int64 // bytes
	AveDiskWrite int64
	MaxDiskRead  int64
	MaxDiskWrite int64

	// Job state.
	State           State
	ExitCode        int
	ExitSignal      int
	DerivedExitCode string
	Reason          string
	Suspended       time.Duration
	Restarts        int64
	Constraints     string

	// Scheduling metadata.
	Priority       int64
	QOS            string
	QOSReq         string
	Flags          []string
	TRESUsageInAve TRES
	TRESReq        TRES

	// Special indicators.
	Dependency string
	ArrayJobID int64 // 0 when not part of an array

	// Misc.
	Comment       string
	SystemComment string
	AdminComment  string
}

// FlagBackfill is the Flags entry Slurm sets on jobs started by the
// backfill scheduler; the paper derives its Backfill indicator from it.
const FlagBackfill = "SchedBackfill"

// FlagMain marks jobs started by the main (priority-order) scheduling loop.
const FlagMain = "SchedMain"

// Backfilled reports whether the job was started by the backfill scheduler.
func (r *Record) Backfilled() bool {
	for _, f := range r.Flags {
		if f == FlagBackfill {
			return true
		}
	}
	return false
}

// WaitTime returns the queue wait (Start − Submit). Jobs that never
// started report the zero duration and ok=false.
func (r *Record) WaitTime() (time.Duration, bool) {
	if r.Start.IsZero() || r.Submit.IsZero() || r.Start.Before(r.Submit) {
		return 0, false
	}
	return r.Start.Sub(r.Submit), true
}

// WalltimeSlack returns Timelimit − Elapsed, the unused portion of the
// user's request; negative only for TIMEOUT overruns past the grace period.
func (r *Record) WalltimeSlack() time.Duration { return r.Timelimit - r.Elapsed }

// IsStep reports whether this record is a step rather than a job.
func (r *Record) IsStep() bool { return r.ID.IsStep() }

// Year returns the submission year, used for Figure 1 binning.
func (r *Record) Year() int { return r.Submit.Year() }

// flagString joins Flags the way sacct renders them.
func (r *Record) flagString() string { return strings.Join(r.Flags, ",") }

func (r *Record) setFlags(s string) {
	s = strings.TrimSpace(s)
	if s == "" {
		r.Flags = nil
		return
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	r.Flags = out
}
