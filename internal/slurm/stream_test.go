package slurm

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

const streamSample = `JobID|User|State|Elapsed|NNodes
100001|alice|COMPLETED|01:30:00|128
100002|bob|FAILED|00:10:00|9.4K

100003|carol|CANCELLED|00:00:00|1
`

const streamSampleJunk = streamSample +
	"100004|dave|COMPLE\n" + // missing columns
	"100005|eve|COMPLETED|xx:yy:zz|4\n" + // bad duration
	"100006|frank|COMPLETED|00:05:00|2\n"

func TestRecordReaderClean(t *testing.T) {
	rr, err := NewRecordReader(strings.NewReader(streamSample))
	if err != nil {
		t.Fatal(err)
	}
	if got := rr.Fields(); len(got) != 5 || got[0] != "JobID" || got[4] != "NNodes" {
		t.Errorf("Fields = %v", got)
	}
	var users []string
	var nodes []int64
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		users = append(users, rec.User)
		nodes = append(nodes, rec.NNodes)
	}
	if strings.Join(users, ",") != "alice,bob,carol" {
		t.Errorf("users = %v", users)
	}
	if nodes[1] != 9400 {
		t.Errorf("K-count not expanded: %v", nodes)
	}
}

func TestRecordReaderScratchReuse(t *testing.T) {
	rr, err := NewRecordReader(strings.NewReader(streamSample))
	if err != nil {
		t.Fatal(err)
	}
	first, err := rr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.User != "alice" || first.Elapsed != 90*time.Minute {
		t.Fatalf("first = %+v", first)
	}
	row := rr.Row()
	if len(row) != 5 || row[1] != "alice" {
		t.Fatalf("Row = %v", row)
	}
	second, err := rr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("scratch record not reused across Next calls")
	}
	if first.User != "bob" {
		t.Errorf("scratch not overwritten: %q", first.User)
	}
	if rr.Row()[1] != "bob" {
		t.Errorf("Row scratch not overwritten: %v", rr.Row())
	}
}

func TestRecordReaderRowErrors(t *testing.T) {
	rr, err := NewRecordReader(strings.NewReader(streamSampleJunk))
	if err != nil {
		t.Fatal(err)
	}
	var kept, malformed int
	var lines []int
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		var rowErr *RowError
		if errors.As(err, &rowErr) {
			malformed++
			lines = append(lines, rowErr.Line)
			if rowErr.Error() == "" || rowErr.Unwrap() == nil {
				t.Error("RowError lacks detail")
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		_ = rec
		kept++
	}
	if kept != 4 || malformed != 2 {
		t.Errorf("kept=%d malformed=%d, want 4/2", kept, malformed)
	}
	// streamSample has a blank line before carol, so dave's truncated row
	// is input line 6 and eve's bad duration line 7.
	if len(lines) != 2 || lines[0] != 6 || lines[1] != 7 {
		t.Errorf("RowError lines = %v", lines)
	}
}

func TestRecordReaderHeaderErrors(t *testing.T) {
	if _, err := NewRecordReader(strings.NewReader("")); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := NewRecordReader(strings.NewReader("JobID|Mystery\n")); err == nil {
		t.Error("unknown header field: want error")
	}
}

func TestRecordSeqAllAndCollect(t *testing.T) {
	rr, err := NewRecordReader(strings.NewReader(streamSampleJunk))
	if err != nil {
		t.Fatal(err)
	}
	recs, malformed, err := CollectRecords(rr.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || malformed != 2 {
		t.Fatalf("collect: %d records, %d malformed", len(recs), malformed)
	}
	// Collected records must be copies, not aliases of the scratch.
	if recs[0].User == recs[1].User {
		t.Errorf("records alias each other: %+v", recs[:2])
	}
	if recs[3].User != "frank" {
		t.Errorf("last record = %+v", recs[3])
	}
}

func TestRecordSeqEarlyBreak(t *testing.T) {
	rr, err := NewRecordReader(strings.NewReader(streamSample))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range rr.All() {
		if e != nil {
			t.Fatal(e)
		}
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Errorf("broke after %d records", n)
	}
}

func TestSplitInto(t *testing.T) {
	buf := make([]string, 0, 4)
	got := splitInto(buf, "a|b||c")
	if len(got) != 4 || got[0] != "a" || got[2] != "" || got[3] != "c" {
		t.Errorf("splitInto = %v", got)
	}
	if got = splitInto(got[:0], "solo"); len(got) != 1 || got[0] != "solo" {
		t.Errorf("splitInto single = %v", got)
	}
}

func BenchmarkRecordReaderDecode(b *testing.B) {
	// One synthetic row over the full curated selection, decoded with the
	// streaming reader versus the allocating DecodeRecord.
	fields := SelectedNames()
	rec := Record{
		ID: NewJobID(123456), JobName: "bench", User: "alice", Account: "csc000",
		Cluster: "frontier", Partition: "batch",
		Submit:  time.Date(2024, 3, 1, 10, 0, 0, 0, time.UTC),
		Start:   time.Date(2024, 3, 1, 11, 0, 0, 0, time.UTC),
		End:     time.Date(2024, 3, 1, 13, 0, 0, 0, time.UTC),
		Elapsed: 2 * time.Hour, Timelimit: 4 * time.Hour,
		NNodes: 128, NCPUs: 8192, State: StateCompleted,
		Flags: []string{FlagBackfill}, QOS: "normal",
		TRESReq: TRES{}, TRESUsageInAve: TRES{},
	}
	line, err := EncodeRecord(&rec, fields)
	if err != nil {
		b.Fatal(err)
	}
	input := Header(fields) + "\n"
	const rows = 64
	for i := 0; i < rows; i++ {
		input += line + "\n"
	}
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rr, err := NewRecordReader(strings.NewReader(input))
			if err != nil {
				b.Fatal(err)
			}
			for {
				if _, err := rr.Next(); err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("decode-record", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < rows; j++ {
				if _, err := DecodeRecord(line, fields); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
