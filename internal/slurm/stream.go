package slurm

import (
	"bufio"
	"fmt"
	"io"
	"iter"
	"strings"
)

// RecordSeq is the streaming record contract threaded through the data
// plane (decode → curate → store → analyze): a pull iterator over
// records. Each yielded pair is either (record, nil) or (nil, err). A
// *RowError marks one malformed data row — producers keep iterating past
// it, so consumers that curate may count and skip it — while any other
// error is terminal and ends the sequence. Yielded records may point
// into producer-owned scratch storage that is reused on the next step;
// consumers that retain a record past one iteration must copy it.
type RecordSeq = iter.Seq2[*Record, error]

// RowError reports one malformed data row in a record stream. It is the
// non-fatal error kind of RecordSeq: iteration continues past it.
type RowError struct {
	Line int   // 1-based line number in the input (the header is line 1)
	Err  error // what made the row undecodable
}

// Error implements error.
func (e *RowError) Error() string {
	return fmt.Sprintf("slurm: row at line %d: %v", e.Line, e.Err)
}

// Unwrap exposes the underlying decode failure.
func (e *RowError) Unwrap() error { return e.Err }

// RecordReader is a streaming decoder for pipe-separated sacct text: it
// resolves the header's field accessors once and decodes one row per
// Next call into a reusable scratch record, splitting columns into a
// reusable buffer — no per-row field-slice or record allocations. The
// returned record and the Row backing storage are valid only until the
// following Next call.
type RecordReader struct {
	sc     *bufio.Scanner
	fields []*Field // pre-resolved header columns, in header order
	names  []string // header spellings, for error attribution
	cols   []string // per-row column scratch
	rec    Record   // per-row record scratch
	line   int      // lines consumed so far (header included)
}

// NewRecordReader reads and validates the header line of r. An empty
// input or a header naming an unknown field is an error.
func NewRecordReader(r io.Reader) (*RecordReader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("slurm: input has no header")
	}
	fields, names, err := resolveHeader(sc.Text())
	if err != nil {
		return nil, err
	}
	return &RecordReader{
		sc:     sc,
		fields: fields,
		names:  names,
		cols:   make([]string, 0, len(names)),
		line:   1, // the header line
	}, nil
}

// Fields returns the header's field names in column order. The slice is
// owned by the reader; callers must not modify it.
func (rr *RecordReader) Fields() []string { return rr.names }

// Line returns the 1-based line number of the most recently consumed
// input line.
func (rr *RecordReader) Line() int { return rr.line }

// Row returns the raw columns of the row Next most recently decoded.
// The backing storage is reused by the following Next call.
func (rr *RecordReader) Row() []string { return rr.cols }

// Next decodes the next data row. Blank lines are skipped. It returns
// io.EOF at the end of input, a *RowError for a malformed row (callers
// may keep reading past it), and any other error terminally.
func (rr *RecordReader) Next() (*Record, error) {
	for rr.sc.Scan() {
		rr.line++
		line := rr.sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		rr.cols = splitInto(rr.cols[:0], line)
		if len(rr.cols) != len(rr.fields) {
			return nil, &RowError{Line: rr.line,
				Err: fmt.Errorf("slurm: %d columns, want %d", len(rr.cols), len(rr.fields))}
		}
		rr.rec = Record{TRESReq: TRES{}, TRESUsageInAve: TRES{}}
		for i, f := range rr.fields {
			if err := f.Set(&rr.rec, rr.cols[i]); err != nil {
				return nil, &RowError{Line: rr.line,
					Err: fmt.Errorf("slurm: field %s: %w", rr.names[i], err)}
			}
		}
		return &rr.rec, nil
	}
	if err := rr.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// All returns the reader's remaining rows as a RecordSeq: malformed rows
// are yielded as (nil, *RowError) and iteration continues; a terminal
// error is yielded last. Records alias the reader's scratch storage.
func (rr *RecordReader) All() RecordSeq {
	return func(yield func(*Record, error) bool) {
		for {
			rec, err := rr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if _, ok := err.(*RowError); ok {
					if !yield(nil, err) {
						return
					}
					continue
				}
				yield(nil, err)
				return
			}
			if !yield(rec, nil) {
				return
			}
		}
	}
}

// CollectRecords drains a RecordSeq into a slice, copying each record
// out of producer scratch. Malformed rows are counted and skipped; the
// first terminal error stops collection and is returned alongside what
// was gathered so far.
func CollectRecords(seq RecordSeq) (recs []Record, malformed int, err error) {
	for r, e := range seq {
		if e != nil {
			if _, ok := e.(*RowError); ok {
				malformed++
				continue
			}
			return recs, malformed, e
		}
		recs = append(recs, *r)
	}
	return recs, malformed, nil
}

// resolveHeader maps one raw header line to its field accessors in
// column order. Shared by the string and byte decoders so both accept
// exactly the same headers.
func resolveHeader(line string) ([]*Field, []string, error) {
	names := strings.Split(strings.TrimSpace(line), Separator)
	fields := make([]*Field, len(names))
	for i, name := range names {
		f, ok := fieldIndex[strings.ToLower(strings.TrimSpace(name))]
		if !ok {
			return nil, nil, fmt.Errorf("slurm: unknown field %q in header", name)
		}
		fields[i] = f
	}
	return fields, names, nil
}

// splitInto splits line on the sacct column separator into buf, growing
// it only when the input has more columns than any prior row.
func splitInto(buf []string, line string) []string {
	for {
		i := strings.IndexByte(line, Separator[0])
		if i < 0 {
			return append(buf, line)
		}
		buf = append(buf, line[:i])
		line = line[i+1:]
	}
}
