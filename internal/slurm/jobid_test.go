package slurm

import (
	"testing"
	"testing/quick"
)

func TestJobIDString(t *testing.T) {
	cases := []struct {
		id   JobID
		want string
	}{
		{NewJobID(12345), "12345"},
		{NewJobID(12345).WithBatch(), "12345.batch"},
		{NewJobID(12345).WithStep(0), "12345.0"},
		{NewJobID(12345).WithStep(17), "12345.17"},
		{JobID{Job: 7, Array: 3}, "7_3"},
		{JobID{Job: 7, Array: 3, Kind: StepNumbered, Step: 2}, "7_3.2"},
		{JobID{Job: 9, Array: -1, Kind: StepExtern}, "9.extern"},
	}
	for _, c := range cases {
		if got := c.id.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParseJobID(t *testing.T) {
	for _, in := range []string{"12345", "12345.batch", "12345.extern", "12345.0", "12345.17", "7_3", "7_3.2"} {
		id, err := ParseJobID(in)
		if err != nil {
			t.Errorf("ParseJobID(%q): %v", in, err)
			continue
		}
		if got := id.String(); got != in {
			t.Errorf("round trip %q → %q", in, got)
		}
	}
	for _, in := range []string{"", "abc", "0", "-3", "12.x9", "1_-2", "1_a"} {
		if _, err := ParseJobID(in); err == nil {
			t.Errorf("ParseJobID(%q): want error", in)
		}
	}
}

func TestJobIDBase(t *testing.T) {
	id := NewJobID(42).WithStep(3)
	if !id.IsStep() {
		t.Error("WithStep: IsStep() = false")
	}
	base := id.Base()
	if base.IsStep() || base.Job != 42 {
		t.Errorf("Base() = %v", base)
	}
}

func TestCompareJobID(t *testing.T) {
	ordered := []JobID{
		NewJobID(1),
		NewJobID(1).WithBatch(),
		{Job: 1, Array: -1, Kind: StepExtern},
		NewJobID(1).WithStep(0),
		NewJobID(1).WithStep(1),
		{Job: 2, Array: 0},
		{Job: 2, Array: 1},
		NewJobID(3),
	}
	for i := range ordered {
		for j := range ordered {
			got := CompareJobID(ordered[i], ordered[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%v,%v) = %d, want <0", ordered[i], ordered[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v,%v) = %d, want >0", ordered[i], ordered[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", ordered[i], ordered[j], got)
			}
		}
	}
}

func TestJobIDRoundTripProperty(t *testing.T) {
	f := func(job uint32, step uint8, hasStep bool) bool {
		id := NewJobID(int64(job) + 1)
		if hasStep {
			id = id.WithStep(int64(step))
		}
		parsed, err := ParseJobID(id.String())
		return err == nil && parsed == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
