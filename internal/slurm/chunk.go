package slurm

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Chunk is one newline-aligned byte range of a period file's data
// region: it starts at the first byte of a data line and ends just past
// a line terminator (or at end of file), so no row straddles two chunks.
type Chunk struct {
	Off int64 // absolute file offset of the chunk's first byte
	Len int64 // byte length
}

// ChunkScanner plans a parallel decode of one sacct period file. The
// header is read and resolved once; the data region is split into at
// most n chunks of roughly equal size whose boundaries are advanced to
// the next newline, so every chunk is a whole number of rows and the
// chunk decoders can run independently. Files smaller than one row per
// requested chunk simply yield fewer chunks.
type ChunkScanner struct {
	path   string
	fields []*Field
	names  []string
	chunks []Chunk
}

// chunkAlignBuf sizes the read buffer used to find the newline after a
// candidate chunk boundary.
const chunkAlignBuf = 64 << 10

// NewChunkScanner resolves path's header and plans up to n newline-
// aligned chunks over its data region. An empty input or a header
// naming an unknown field is an error, exactly as in NewRecordReader.
func NewChunkScanner(path string, n int) (*ChunkScanner, error) {
	if n < 1 {
		n = 1
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()

	header, headerLen, err := readHeaderLine(f)
	if err != nil {
		return nil, err
	}
	fields, names, err := resolveHeader(header)
	if err != nil {
		return nil, err
	}

	cs := &ChunkScanner{path: path, fields: fields, names: names}
	dataStart := headerLen
	if dataStart >= size {
		return cs, nil // header only: zero chunks
	}
	target := (size - dataStart + int64(n) - 1) / int64(n)
	prev := dataStart
	for prev < size {
		end := prev + target
		if end >= size {
			end = size
		} else {
			end, err = nextLineStart(f, end, size)
			if err != nil {
				return nil, err
			}
		}
		if end > prev {
			cs.chunks = append(cs.chunks, Chunk{Off: prev, Len: end - prev})
		}
		prev = end
	}
	return cs, nil
}

// readHeaderLine reads the first line of f, returning its text (without
// the terminator) and the file offset of the first data byte.
func readHeaderLine(f *os.File) (string, int64, error) {
	br := bufio.NewReaderSize(f, 1<<16)
	line, err := br.ReadString('\n')
	if err != nil && err != io.EOF {
		return "", 0, err
	}
	if line == "" {
		return "", 0, fmt.Errorf("slurm: input has no header")
	}
	off := int64(len(line))
	line = trimLineEnd(line)
	return line, off, nil
}

// trimLineEnd drops a trailing "\n" and one "\r" before it.
func trimLineEnd(s string) string {
	if n := len(s); n > 0 && s[n-1] == '\n' {
		s = s[:n-1]
	}
	if n := len(s); n > 0 && s[n-1] == '\r' {
		s = s[:n-1]
	}
	return s
}

// nextLineStart returns the offset of the first byte after the next
// '\n' at or beyond off, or size when no newline remains.
func nextLineStart(f *os.File, off, size int64) (int64, error) {
	buf := make([]byte, chunkAlignBuf)
	for off < size {
		n, err := f.ReadAt(buf, off)
		if n > 0 {
			if i := bytes.IndexByte(buf[:n], '\n'); i >= 0 {
				return off + int64(i) + 1, nil
			}
			off += int64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
	}
	return size, nil
}

// Fields returns the header's field names in column order. The slice is
// owned by the scanner; callers must not modify it.
func (cs *ChunkScanner) Fields() []string { return cs.names }

// NumChunks returns how many chunks the plan produced.
func (cs *ChunkScanner) NumChunks() int { return len(cs.chunks) }

// Chunks returns a copy of the planned byte ranges, in file order.
func (cs *ChunkScanner) Chunks() []Chunk {
	out := make([]Chunk, len(cs.chunks))
	copy(out, cs.chunks)
	return out
}

// Open returns a decoder over chunk i, plus the file handle to close
// when done. Chunk 0 starts right after the header, so its RowError
// line numbers match the sequential reader's; interior chunks report
// chunk-relative line numbers.
func (cs *ChunkScanner) Open(i int) (*ByteRecordReader, io.Closer, error) {
	f, err := os.Open(cs.path)
	if err != nil {
		return nil, nil, err
	}
	c := cs.chunks[i]
	base := 0
	if i == 0 {
		base = 1 // the header line precedes chunk 0
	}
	sec := io.NewSectionReader(f, c.Off, c.Len)
	return newByteRecordReader(bufio.NewReaderSize(sec, 1<<16), cs.fields, cs.names, base), f, nil
}

// batchRows sizes the record batches the parallel merge hands between
// goroutines: big enough to amortise channel traffic, small enough to
// keep per-chunk buffering bounded.
const batchRows = 1024

// chunkItem is one merged-stream event: a decoded record or an error
// (a *RowError to skip past, anything else terminal).
type chunkItem struct {
	rec Record
	err error
}

// All decodes every chunk on a pool of `workers` goroutines and merges
// the results into one RecordSeq in file order: chunk i's rows are
// yielded, in order, before chunk i+1's. Records are copied out of the
// per-chunk decoder scratch into batches, so each yielded record is
// valid until the following iteration, same as the sequential contract.
// Stopping the iteration early cancels the outstanding decoders.
func (cs *ChunkScanner) All(workers int) RecordSeq {
	return func(yield func(*Record, error) bool) {
		n := len(cs.chunks)
		if n == 0 {
			return
		}
		if workers < 1 {
			workers = 1
		}
		if workers > n {
			workers = n
		}
		chans := make([]chan []chunkItem, n)
		for i := range chans {
			chans[i] = make(chan []chunkItem, 2)
		}
		done := make(chan struct{})
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					cs.decodeChunk(i, chans[i], done)
				}
			}()
		}
		defer wg.Wait()
		defer close(done)
		for i := 0; i < n; i++ {
			for batch := range chans[i] {
				for j := range batch {
					it := &batch[j]
					if it.err != nil {
						if _, ok := it.err.(*RowError); ok {
							if !yield(nil, it.err) {
								return
							}
							continue
						}
						yield(nil, it.err)
						return
					}
					if !yield(&it.rec, nil) {
						return
					}
				}
			}
		}
	}
}

// decodeChunk runs one chunk's decoder to completion, sending copied
// record batches on out (closed when the chunk is done) and stopping
// promptly when done is closed. A terminal error ends the batch stream.
func (cs *ChunkScanner) decodeChunk(i int, out chan<- []chunkItem, done <-chan struct{}) {
	defer close(out)
	rr, closer, err := cs.Open(i)
	if err != nil {
		select {
		case out <- []chunkItem{{err: err}}:
		case <-done:
		}
		return
	}
	defer closer.Close()
	batch := make([]chunkItem, 0, batchRows)
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		select {
		case out <- batch:
			batch = make([]chunkItem, 0, batchRows)
			return true
		case <-done:
			return false
		}
	}
	for {
		rec, err := rr.Next()
		switch {
		case err == io.EOF:
			flush()
			return
		case err != nil:
			batch = append(batch, chunkItem{err: err})
			if _, ok := err.(*RowError); !ok {
				flush()
				return
			}
		default:
			batch = append(batch, chunkItem{rec: *rec})
		}
		if len(batch) == batchRows {
			if !flush() {
				return
			}
		}
	}
}
