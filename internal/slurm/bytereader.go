package slurm

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// maxLineLen mirrors RecordReader's scanner buffer cap: lines longer
// than this fail with bufio.ErrTooLong on both decode paths.
const maxLineLen = 1 << 20

// internCap bounds the per-reader string and flag caches. Past it the
// reader keeps decoding correctly but allocates fresh strings; real
// sacct columns (users, accounts, partitions, states) stay far below.
const internCap = 1 << 15

// ByteRecordReader is the zero-alloc counterpart of RecordReader: the
// same header contract and row semantics, but lines are pulled straight
// from the read buffer as []byte, columns are tokenized without string
// conversion, and typed fields decode through the Field.SetBytes parsers
// (ParseTimeBytes, ParseDurationBytes, ...) instead of time.Parse and
// strings.Split. Free-form string columns are interned — one allocation
// per distinct value per reader, not per row — so steady-state decode of
// a repetitive trace allocates nothing per row. The returned record and
// the Row backing storage are valid only until the following Next call.
type ByteRecordReader struct {
	r      *bufio.Reader
	fields []*Field // pre-resolved header columns, in header order
	names  []string // header spellings, for error attribution
	cols   [][]byte // per-row column scratch; subslices alias the read buffer
	rec    Record   // per-row record scratch
	line   int      // lines consumed so far (base included)
	long   []byte   // spill for lines longer than the read buffer

	interned   *Interner           // cell bytes → immutable string, for Set-path fields
	flagsCache map[string][]string // raw Flags cell → pre-split, capacity-clipped slice
}

// NewByteRecordReader reads and validates the header line of r. It
// accepts exactly the headers NewRecordReader accepts.
func NewByteRecordReader(r io.Reader) (*ByteRecordReader, error) {
	br := newByteRecordReader(bufio.NewReaderSize(r, 1<<16), nil, nil, 0)
	header, err := br.readLine()
	if err == io.EOF {
		return nil, fmt.Errorf("slurm: input has no header")
	}
	if err != nil {
		return nil, err
	}
	br.line = 1 // the header line
	br.fields, br.names, err = resolveHeader(string(header))
	if err != nil {
		return nil, err
	}
	br.cols = make([][]byte, 0, len(br.fields))
	return br, nil
}

// newByteRecordReader wraps an already-positioned reader whose header
// was resolved elsewhere (the ChunkScanner path). lineBase seeds the
// line counter: 1 for a chunk that starts right after the header (so
// RowError lines match the sequential reader), 0 for interior chunks,
// whose line numbers are then chunk-relative.
func newByteRecordReader(r *bufio.Reader, fields []*Field, names []string, lineBase int) *ByteRecordReader {
	return &ByteRecordReader{
		r:          r,
		fields:     fields,
		names:      names,
		cols:       make([][]byte, 0, len(fields)),
		line:       lineBase,
		interned:   NewInterner(),
		flagsCache: make(map[string][]string),
	}
}

// Fields returns the header's field names in column order. The slice is
// owned by the reader; callers must not modify it.
func (br *ByteRecordReader) Fields() []string { return br.names }

// Line returns the line number of the most recently consumed input
// line: 1-based in the input when the reader saw the header itself,
// chunk-relative for an interior chunk.
func (br *ByteRecordReader) Line() int { return br.line }

// Row returns the raw columns of the row Next most recently decoded.
// The backing storage aliases the read buffer and is reused by the
// following Next call.
func (br *ByteRecordReader) Row() [][]byte { return br.cols }

// readLine returns the next input line with its trailing "\n" (and one
// "\r" before it) stripped, mirroring bufio.ScanLines including the
// final unterminated line. The slice aliases the read buffer (or the
// long-line spill) and is valid until the next call.
func (br *ByteRecordReader) readLine() ([]byte, error) {
	line, err := br.r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		// Rare long line: accumulate into owned spill storage.
		br.long = append(br.long[:0], line...)
		for err == bufio.ErrBufferFull {
			if len(br.long) > maxLineLen {
				return nil, bufio.ErrTooLong
			}
			line, err = br.r.ReadSlice('\n')
			br.long = append(br.long, line...)
		}
		line = br.long
	}
	if err != nil && err != io.EOF {
		return nil, err
	}
	if len(line) == 0 {
		return nil, io.EOF
	}
	if n := len(line); line[n-1] == '\n' {
		line = line[:n-1]
	}
	if len(line) >= maxLineLen { // the scanner cap counts the line before CR-stripping
		return nil, bufio.ErrTooLong
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// Next decodes the next data row. Blank lines are skipped. It returns
// io.EOF at the end of input, a *RowError for a malformed row (callers
// may keep reading past it), and any other error terminally — the same
// contract, accepted inputs, and error text as RecordReader.Next.
func (br *ByteRecordReader) Next() (*Record, error) {
	for {
		line, err := br.readLine()
		if err == io.EOF {
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		br.line++
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		br.cols = SplitFieldsBytes(br.cols[:0], line)
		if len(br.cols) != len(br.fields) {
			return nil, &RowError{Line: br.line,
				Err: fmt.Errorf("slurm: %d columns, want %d", len(br.cols), len(br.fields))}
		}
		br.rec = Record{}
		for i, f := range br.fields {
			if err := br.setField(f, br.cols[i]); err != nil {
				return nil, &RowError{Line: br.line,
					Err: fmt.Errorf("slurm: field %s: %w", br.names[i], err)}
			}
		}
		return &br.rec, nil
	}
}

// setField routes one cell to its decoder: the byte fast path when the
// field has one, the cached-split path for Flags, and Set over an
// interned copy for the free-form string columns.
func (br *ByteRecordReader) setField(f *Field, col []byte) error {
	switch {
	case f.SetBytes != nil:
		return f.SetBytes(&br.rec, col)
	case f == flagsField:
		br.rec.Flags = br.flagsFor(col)
		return nil
	default:
		return f.Set(&br.rec, br.intern(col))
	}
}

// intern returns a string with b's bytes, allocating only on the first
// sighting of a value (while the cache has room).
func (br *ByteRecordReader) intern(b []byte) string { return br.interned.Intern(b) }

// flagsFor returns the parsed flag list for a raw Flags cell, splitting
// each distinct cell value once per reader. Cached slices are clipped to
// their length so a consumer append (the Backfill column merging
// FlagBackfill in) reallocates instead of scribbling on the shared
// backing array.
func (br *ByteRecordReader) flagsFor(b []byte) []string {
	if fl, ok := br.flagsCache[string(b)]; ok { // no alloc: map lookup on []byte key
		return fl
	}
	var tmp Record
	tmp.setFlags(string(b))
	fl := tmp.Flags
	if fl != nil {
		fl = fl[:len(fl):len(fl)]
	}
	if len(br.flagsCache) < internCap {
		br.flagsCache[string(b)] = fl
	}
	return fl
}

// All returns the reader's remaining rows as a RecordSeq with the same
// semantics as RecordReader.All: malformed rows yield (nil, *RowError)
// and iteration continues; a terminal error is yielded last. Records
// alias the reader's scratch storage.
func (br *ByteRecordReader) All() RecordSeq {
	return func(yield func(*Record, error) bool) {
		for {
			rec, err := br.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if _, ok := err.(*RowError); ok {
					if !yield(nil, err) {
						return
					}
					continue
				}
				yield(nil, err)
				return
			}
			if !yield(rec, nil) {
				return
			}
		}
	}
}
