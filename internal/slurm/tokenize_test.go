package slurm

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// mirrorCorpus holds valid and adversarial inputs shared by the
// byte-vs-string parser cross-checks: every ParseXxxBytes must accept,
// reject, and value-match its string counterpart on all of them.
var mirrorCorpus = []string{
	"", " ", "  \t ", "0", "1", "-1", "+7", "007", "128", "9.4K", "2M",
	"1.5G", "9e9", "9e99", "9e99G", "1e-3K", "NaN", "NaNK", "InfG", "-InfK",
	"9223372036854775807", "9223372036854775808", "-9223372036854775808",
	"4611686018427387904K", "4611686018427387903", "1.0000000000000002K",
	"4000M", "512Gn", "2Gc", "0n", "0c", "1T", "1.5Tc", "xyz", "12x",
	"00:00:00", "01:30:00", "1-02:03:04", "90", "05:30", "2-12",
	"2-12:30", "UNLIMITED", "INVALID", "unlimited", "1:2:3:4", "-5",
	"999999999-00:00:00", "8589934592:00:00", "1-", "-", ":", "1::2",
	"00:60:00", "23:59:61", "+1:02", "1- 2", " 01:02:03 ",
	"2024-03-01T08:00:00", "2024-02-30T08:00:00", "2024-02-29T08:00:00",
	"2023-02-29T08:00:00", "2024-13-01T08:00:00", "2024-00-10T08:00:00",
	"2024-03-01 08:00:00", "2024-3-1T8:00:00", "Unknown", "None",
	"UNKNOWN", "none", "2024-03-01T24:00:00", "2024-03-01T08:60:00",
	"12345", "12345.batch", "12345.extern", "12345.0", "7_3", "7_3.2",
	"1_", "_1", "1.", ".", "1_2_3", "1.x", "0.batch", "-3.batch",
	"COMPLETED", "FAILED", "CANCELLED", "CANCELLED by 1234", "cancelled",
	"Completed", "TIMEOUT", "OUT_OF_MEMORY", "NODE_FAIL", "RUNNING",
	"PENDING", "REQUEUED", "PREEMPTED", "SUSPENDED", "BOOT_FAIL",
	"DEADLINE", "NOT_A_STATE", " COMPLETED ",
	"0:0", "1:9", "0:15", "271:0", "2:", ":9", "1:2:3", "9999999999999:0",
}

func TestParseBytesMirrorsString(t *testing.T) {
	type pair struct {
		name string
		cmp  func(s string) (string, bool) // renders value+ok for both paths
	}
	pairs := []pair{
		{"count", func(s string) (string, bool) {
			sv, serr := ParseCount(s)
			bv, berr := ParseCountBytes([]byte(s))
			if (serr == nil) != (berr == nil) || (serr == nil && sv != bv) {
				return fmt.Sprintf("string=(%v,%v) bytes=(%v,%v)", sv, serr, bv, berr), false
			}
			return "", true
		}},
		{"memory", func(s string) (string, bool) {
			sv, sp, serr := ParseMemory(s)
			bv, bp, berr := ParseMemoryBytes([]byte(s))
			if (serr == nil) != (berr == nil) || (serr == nil && (sv != bv || sp != bp)) {
				return fmt.Sprintf("string=(%v,%v,%v) bytes=(%v,%v,%v)", sv, sp, serr, bv, bp, berr), false
			}
			return "", true
		}},
		{"duration", func(s string) (string, bool) {
			sv, serr := ParseDuration(s)
			bv, berr := ParseDurationBytes([]byte(s))
			if (serr == nil) != (berr == nil) || (serr == nil && sv != bv) {
				return fmt.Sprintf("string=(%v,%v) bytes=(%v,%v)", sv, serr, bv, berr), false
			}
			return "", true
		}},
		{"time", func(s string) (string, bool) {
			sv, serr := ParseTime(s)
			bv, berr := ParseTimeBytes([]byte(s))
			if (serr == nil) != (berr == nil) || (serr == nil && !sv.Equal(bv)) {
				return fmt.Sprintf("string=(%v,%v) bytes=(%v,%v)", sv, serr, bv, berr), false
			}
			return "", true
		}},
		{"jobid", func(s string) (string, bool) {
			sv, serr := ParseJobID(s)
			bv, berr := ParseJobIDBytes([]byte(s))
			if (serr == nil) != (berr == nil) || (serr == nil && sv != bv) {
				return fmt.Sprintf("string=(%v,%v) bytes=(%v,%v)", sv, serr, bv, berr), false
			}
			return "", true
		}},
		{"state", func(s string) (string, bool) {
			sv, serr := ParseState(s)
			bv, berr := ParseStateBytes([]byte(s))
			if (serr == nil) != (berr == nil) || (serr == nil && sv != bv) {
				return fmt.Sprintf("string=(%v,%v) bytes=(%v,%v)", sv, serr, bv, berr), false
			}
			return "", true
		}},
		{"exitcode", func(s string) (string, bool) {
			se, ss, serr := ParseExitCode(s)
			be, bs, berr := ParseExitCodeBytes([]byte(s))
			if (serr == nil) != (berr == nil) || (serr == nil && (se != be || ss != bs)) {
				return fmt.Sprintf("string=(%v,%v,%v) bytes=(%v,%v,%v)", se, ss, serr, be, bs, berr), false
			}
			return "", true
		}},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			for _, in := range mirrorCorpus {
				if diag, ok := p.cmp(in); !ok {
					t.Errorf("%s(%q): byte/string mismatch: %s", p.name, in, diag)
				}
			}
		})
	}
}

func TestSplitFieldsBytes(t *testing.T) {
	buf := make([][]byte, 0, 4)
	got := SplitFieldsBytes(buf, []byte("a|b||c"))
	if len(got) != 4 || string(got[0]) != "a" || string(got[2]) != "" || string(got[3]) != "c" {
		t.Errorf("SplitFieldsBytes = %q", got)
	}
	if got = SplitFieldsBytes(got[:0], []byte("solo")); len(got) != 1 || string(got[0]) != "solo" {
		t.Errorf("SplitFieldsBytes single = %q", got)
	}
}

// collectBoth drains a string reader and a byte reader over the same
// input and renders each yielded event to a comparable line: the
// re-encoded record for clean rows, the error text for row errors.
func renderSeq(t *testing.T, seq RecordSeq, fields []string) []string {
	t.Helper()
	var out []string
	for rec, err := range seq {
		if err != nil {
			if _, ok := err.(*RowError); !ok {
				t.Fatalf("terminal error: %v", err)
			}
			out = append(out, "err: "+err.Error())
			continue
		}
		enc, eerr := EncodeRecord(rec, fields)
		if eerr != nil {
			t.Fatalf("re-encode: %v", eerr)
		}
		out = append(out, enc)
	}
	return out
}

func TestByteRecordReaderMatchesRecordReader(t *testing.T) {
	input := streamSampleJunk +
		"100007_3.2|gina|CANCELLED by 99|1-00:30:00|3\n" +
		"100008.batch|hank|OUT_OF_MEMORY|00:00:09|1\r\n" +
		"   \n" +
		"100009|alice|COMPLETED|05:30|9.4K" // no trailing newline
	sr, err := NewRecordReader(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewByteRecordReader(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(sr.Fields(), "|") != strings.Join(br.Fields(), "|") {
		t.Fatalf("headers differ: %v vs %v", sr.Fields(), br.Fields())
	}
	want := renderSeq(t, sr.All(), sr.Fields())
	got := renderSeq(t, br.All(), br.Fields())
	if len(want) != len(got) {
		t.Fatalf("event counts differ: %d vs %d\nstring: %q\nbytes: %q", len(want), len(got), want, got)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("event %d differs:\nstring: %s\nbytes:  %s", i, want[i], got[i])
		}
	}
}

// TestByteRecordReaderFullCatalogue runs the parity check over every
// curated column, including the Flags cache and interned free-form
// strings, on randomized encodable records.
func TestByteRecordReaderFullCatalogue(t *testing.T) {
	fields := SelectedNames()
	rng := rand.New(rand.NewSource(7))
	var sb strings.Builder
	sb.WriteString(Header(fields))
	sb.WriteByte('\n')
	for i := 0; i < 200; i++ {
		rec := randomRecord(rng)
		line, err := EncodeRecord(rec, fields)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	input := sb.String()
	sr, err := NewRecordReader(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewByteRecordReader(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := renderSeq(t, sr.All(), fields)
	got := renderSeq(t, br.All(), fields)
	if len(want) != len(got) {
		t.Fatalf("event counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("row %d differs:\nstring: %s\nbytes:  %s", i, want[i], got[i])
		}
	}
}

// TestByteRecordReaderFlagsCacheIsolated pins the clipped-cache
// property: appending to one record's cached flag slice (what the
// Backfill column does) must not leak into later rows that share the
// cache entry.
func TestByteRecordReaderFlagsCacheIsolated(t *testing.T) {
	input := "JobID|Flags|Backfill\n" +
		"1|SchedMain|1\n" +
		"2|SchedMain|0\n"
	br, err := NewByteRecordReader(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	first, err := br.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(first.Flags, ","); got != "SchedMain,SchedBackfill" {
		t.Fatalf("first flags = %q", got)
	}
	second, err := br.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(second.Flags, ","); got != "SchedMain" {
		t.Fatalf("cached flags corrupted by earlier append: %q", got)
	}
}

// TestByteRecordReaderZeroAllocs is the tentpole's allocation pin: after
// the interner warms up, decoding one row of the full curated selection
// allocates nothing.
func TestByteRecordReaderZeroAllocs(t *testing.T) {
	fields := SelectedNames()
	rec := benchRecord()
	line, err := EncodeRecord(&rec, fields)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(Header(fields))
	sb.WriteByte('\n')
	const rows = 4096
	for i := 0; i < rows; i++ {
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	br, err := NewByteRecordReader(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ { // warm the interner and scratch capacities
		if _, err := br.Next(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(1000, func() {
		if _, err := br.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("decode allocates %.2f allocs/row, want 0", avg)
	}
}

// benchRecord is a representative full-width record whose cells exercise
// the typed byte parsers (timestamps, durations, counts, memory, state,
// exit code, flags) without touching a slow path.
func benchRecord() Record {
	return Record{
		ID: NewJobID(123456), JobName: "bench", User: "alice", Account: "csc000",
		Cluster: "frontier", Partition: "batch",
		Submit:  time.Date(2024, 3, 1, 10, 0, 0, 0, time.UTC),
		Start:   time.Date(2024, 3, 1, 11, 0, 0, 0, time.UTC),
		End:     time.Date(2024, 3, 1, 13, 0, 0, 0, time.UTC),
		Elapsed: 2 * time.Hour, Timelimit: 4 * time.Hour,
		NNodes: 128, NCPUs: 8192, ReqNodes: 128, ReqCPUs: 8192,
		ReqMem: 512 << 20, State: StateCompleted, ExitCode: 0,
		Flags: []string{FlagBackfill}, QOS: "normal", Priority: 100000,
		Eligible: time.Date(2024, 3, 1, 10, 0, 0, 0, time.UTC),
	}
}

func BenchmarkByteRecordReaderDecode(b *testing.B) {
	fields := SelectedNames()
	rec := benchRecord()
	line, err := EncodeRecord(&rec, fields)
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(Header(fields))
	sb.WriteByte('\n')
	const rows = 64
	for i := 0; i < rows; i++ {
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	input := sb.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		br, err := NewByteRecordReader(strings.NewReader(input))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := br.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}
