package slurm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseCount parses a Slurm count field (NNodes, NCPUs, NTasks). sacct
// abbreviates large counts with decimal magnitude suffixes (K = 1000,
// M = 1e6, G = 1e9), optionally with a fraction, e.g. "9.4K" nodes.
func ParseCount(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("slurm: empty count")
	}
	mult := int64(1)
	switch last := t[len(t)-1]; last {
	case 'K', 'k':
		mult, t = 1_000, t[:len(t)-1]
	case 'M', 'm':
		mult, t = 1_000_000, t[:len(t)-1]
	case 'G', 'g':
		mult, t = 1_000_000_000, t[:len(t)-1]
	}
	if mult == 1 {
		n, err := strconv.ParseInt(t, 10, 64)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("slurm: bad count %q", s)
		}
		return n, nil
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 || f*float64(mult) > float64(1<<62) {
		return 0, fmt.Errorf("slurm: bad count %q", s)
	}
	return int64(f*float64(mult) + 0.5), nil
}

// FormatCount renders a count the way sacct abbreviates large numbers:
// values ≥ 10000 collapse to a one-decimal K/M suffix.
func FormatCount(n int64) string {
	switch {
	case n >= 10_000_000:
		return trimZero(fmt.Sprintf("%.1fM", float64(n)/1e6))
	case n >= 10_000:
		return trimZero(fmt.Sprintf("%.1fK", float64(n)/1e3))
	default:
		return strconv.FormatInt(n, 10)
	}
}

func trimZero(s string) string {
	// "9.0K" → "9K"
	if i := strings.Index(s, ".0"); i >= 0 && i+2 < len(s) {
		return s[:i] + s[i+2:]
	}
	return s
}

// ParseMemory parses a Slurm memory field (ReqMem, MaxRSS, AveRSS, VMSize)
// into bytes. Slurm memory sizes are binary: 1K = 1024. ReqMem carries a
// per-node ("n") or per-CPU ("c") qualifier which is returned separately.
func ParseMemory(s string) (bytes int64, perCPU bool, err error) {
	t := strings.TrimSpace(s)
	if t == "" || t == "0" {
		return 0, false, nil
	}
	switch t[len(t)-1] {
	case 'n', 'N':
		t = t[:len(t)-1]
	case 'c', 'C':
		perCPU, t = true, t[:len(t)-1]
	}
	mult := int64(1)
	if t != "" {
		switch t[len(t)-1] {
		case 'K', 'k':
			mult, t = 1<<10, t[:len(t)-1]
		case 'M', 'm':
			mult, t = 1<<20, t[:len(t)-1]
		case 'G', 'g':
			mult, t = 1<<30, t[:len(t)-1]
		case 'T', 't':
			mult, t = 1<<40, t[:len(t)-1]
		}
	}
	f, ferr := strconv.ParseFloat(t, 64)
	if ferr != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 || f*float64(mult) > float64(1<<62) {
		return 0, false, fmt.Errorf("slurm: bad memory size %q", s)
	}
	return int64(f * float64(mult)), perCPU, nil
}

// FormatMemory renders bytes in Slurm's usual whole-unit form, picking the
// largest binary unit that divides cleanly enough to keep one decimal.
func FormatMemory(bytes int64, perCPU bool) string {
	suffix := "n"
	if perCPU {
		suffix = "c"
	}
	if bytes == 0 {
		return "0" + suffix
	}
	units := []struct {
		div  int64
		name string
	}{
		{1 << 40, "T"}, {1 << 30, "G"}, {1 << 20, "M"}, {1 << 10, "K"},
	}
	for _, u := range units {
		if bytes >= u.div {
			v := float64(bytes) / float64(u.div)
			if v == float64(int64(v)) {
				return strconv.FormatInt(int64(v), 10) + u.name + suffix
			}
			return strconv.FormatFloat(v, 'f', 2, 64) + u.name + suffix
		}
	}
	return strconv.FormatInt(bytes, 10) + suffix
}

// ParseExitCode parses sacct's "exit:signal" ExitCode column.
func ParseExitCode(s string) (exit, signal int, err error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, 0, nil
	}
	i := strings.IndexByte(t, ':')
	if i < 0 {
		e, err := strconv.Atoi(t)
		return e, 0, err
	}
	e, err1 := strconv.Atoi(t[:i])
	sig, err2 := strconv.Atoi(t[i+1:])
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("slurm: bad exit code %q", s)
	}
	return e, sig, nil
}

// FormatExitCode renders the "exit:signal" pair.
func FormatExitCode(exit, signal int) string {
	return fmt.Sprintf("%d:%d", exit, signal)
}
