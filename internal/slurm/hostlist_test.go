package slurm

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestExpandNodeList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"frontier000001", []string{"frontier000001"}},
		{"frontier[000001-000003]", []string{"frontier000001", "frontier000002", "frontier000003"}},
		{"frontier[000001-000002,000007]", []string{"frontier000001", "frontier000002", "frontier000007"}},
		{"a01,b[02-03]", []string{"a01", "b02", "b03"}},
		{"login1", []string{"login1"}},
		{"n[5]", []string{"n5"}},
		{"", nil},
	}
	for _, c := range cases {
		got, err := ExpandNodeList(c.in)
		if err != nil {
			t.Errorf("ExpandNodeList(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ExpandNodeList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, in := range []string{"a[1", "a]1[", "a[x-y]", "a[5-2]", "a[]"} {
		if _, err := ExpandNodeList(in); err == nil {
			t.Errorf("ExpandNodeList(%q): want error", in)
		}
	}
}

func TestNodeListCount(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"frontier[000000-009407]", 9408},
		{"a01,b[02-03],c", 4},
		{"x", 1},
		{"", 0},
	}
	for _, c := range cases {
		got, err := NodeListCount(c.in)
		if err != nil || got != c.want {
			t.Errorf("NodeListCount(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	if _, err := NodeListCount("a]b["); err == nil {
		t.Error("malformed count: want error")
	}
}

func TestCompressNodeList(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{[]string{"frontier000001", "frontier000002", "frontier000003"}, "frontier[000001-000003]"},
		{[]string{"frontier000001", "frontier000003"}, "frontier[000001,000003]"},
		{[]string{"a01", "b02", "b03"}, "a01,b[02-03]"},
		{[]string{"login"}, "login"},
		{[]string{"n5"}, "n5"},
	}
	for _, c := range cases {
		if got := CompressNodeList(c.in); got != c.want {
			t.Errorf("CompressNodeList(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Compression and expansion are inverse up to ordering.
func TestHostlistRoundTripProperty(t *testing.T) {
	f := func(start uint8, count uint8) bool {
		n := int(count)%50 + 1
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = CompressNodeList([]string{nodeName("nid", int(start)+i*2, 6)})
		}
		compressed := CompressNodeList(names)
		expanded, err := ExpandNodeList(compressed)
		if err != nil {
			return false
		}
		if len(expanded) != n {
			return false
		}
		for i := range names {
			if expanded[i] != names[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func nodeName(prefix string, idx, width int) string {
	s := prefix
	digits := make([]byte, width)
	for i := width - 1; i >= 0; i-- {
		digits[i] = byte('0' + idx%10)
		idx /= 10
	}
	return s + string(digits)
}

func TestSimulatorNodeListsRoundTrip(t *testing.T) {
	// The synthetic NodeList the simulator emits must parse back to the
	// allocation size.
	for _, c := range []struct {
		list string
		want int
	}{
		{"frontier[000000-000127]", 128},
		{"frontier000000", 1},
	} {
		got, err := NodeListCount(c.list)
		if err != nil || got != c.want {
			t.Errorf("NodeListCount(%q) = %d, %v", c.list, got, err)
		}
	}
}
