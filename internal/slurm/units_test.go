package slurm

import (
	"testing"
	"testing/quick"
)

func TestParseCount(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"9408", 9408},
		{"2K", 2000},
		{"9.4K", 9400},
		{"1.5M", 1_500_000},
		{"2G", 2_000_000_000},
		{" 42 ", 42},
	}
	for _, c := range cases {
		got, err := ParseCount(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseCount(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, in := range []string{"", "-1", "abc", "1.2.3K", "K"} {
		if _, err := ParseCount(in); err == nil {
			t.Errorf("ParseCount(%q): want error", in)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0"},
		{9408, "9408"},
		{10_000, "10K"},
		{9_400, "9400"},
		{18_000_000, "18M"},
		{12_345, "12.3K"},
	}
	for _, c := range cases {
		if got := FormatCount(c.in); got != c.want {
			t.Errorf("FormatCount(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Counts below the abbreviation threshold must round-trip exactly; above
// it, within the one-decimal suffix precision.
func TestCountRoundTripProperty(t *testing.T) {
	f := func(n uint16) bool {
		v := int64(n)
		got, err := ParseCount(FormatCount(v))
		if err != nil {
			return false
		}
		if v < 10_000 {
			return got == v
		}
		diff := got - v
		if diff < 0 {
			diff = -diff
		}
		return diff*20 <= v // within 5%
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseMemory(t *testing.T) {
	cases := []struct {
		in     string
		want   int64
		perCPU bool
	}{
		{"0", 0, false},
		{"4000M", 4000 << 20, false},
		{"512Gn", 512 << 30, false},
		{"2Gc", 2 << 30, true},
		{"1.5K", 1536, false},
		{"1T", 1 << 40, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, perCPU, err := ParseMemory(c.in)
		if err != nil || got != c.want || perCPU != c.perCPU {
			t.Errorf("ParseMemory(%q) = %d, %v, %v; want %d, %v", c.in, got, perCPU, err, c.want, c.perCPU)
		}
	}
	for _, in := range []string{"abcM", "-3G", "12Q"} {
		if _, _, err := ParseMemory(in); err == nil {
			t.Errorf("ParseMemory(%q): want error", in)
		}
	}
}

func TestFormatMemory(t *testing.T) {
	cases := []struct {
		bytes  int64
		perCPU bool
		want   string
	}{
		{0, false, "0n"},
		{4000 << 20, false, "3.91Gn"},
		{512 << 30, false, "512Gn"},
		{2 << 30, true, "2Gc"},
		{512, false, "512n"},
	}
	for _, c := range cases {
		if got := FormatMemory(c.bytes, c.perCPU); got != c.want {
			t.Errorf("FormatMemory(%d, %v) = %q, want %q", c.bytes, c.perCPU, got, c.want)
		}
	}
}

func TestMemoryRoundTripProperty(t *testing.T) {
	f := func(kb uint32, perCPU bool) bool {
		v := int64(kb) << 10
		got, gotPer, err := ParseMemory(FormatMemory(v, perCPU))
		if err != nil || gotPer != perCPU {
			return false
		}
		// Two-decimal formatting loses at most 1% of the top unit.
		diff := got - v
		if diff < 0 {
			diff = -diff
		}
		return diff*100 <= v+(1<<10)*100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExitCode(t *testing.T) {
	e, sig, err := ParseExitCode("1:9")
	if err != nil || e != 1 || sig != 9 {
		t.Errorf("ParseExitCode(1:9) = %d,%d,%v", e, sig, err)
	}
	if got := FormatExitCode(0, 0); got != "0:0" {
		t.Errorf("FormatExitCode = %q", got)
	}
	if _, _, err := ParseExitCode("a:b"); err == nil {
		t.Error("ParseExitCode(a:b): want error")
	}
	e, sig, err = ParseExitCode("")
	if err != nil || e != 0 || sig != 0 {
		t.Errorf("ParseExitCode(empty) = %d,%d,%v", e, sig, err)
	}
}
