// Package slurm models the subset of the Slurm accounting data universe used
// by the SlurmSight workflow: job and step records, the curated field
// catalogue from Table 1 of the paper, and parsers/formatters for the text
// encodings emitted by sacct (durations, memory sizes, K-suffixed counts,
// TRES strings, pipe-separated records).
//
// The package is a from-scratch substrate standing in for the proprietary
// Slurm accounting database at OLCF; every other module consumes traces only
// through the types defined here.
package slurm

import (
	"fmt"
	"strings"
)

// State is the terminal (or live) state of a job or step, mirroring the
// sacct State column.
type State int

// Job states recognised by the workflow. The order matters only for stable
// presentation: terminal success first, then failure modes, then live states.
const (
	StateCompleted State = iota
	StateFailed
	StateCancelled
	StateTimeout
	StateNodeFail
	StateOutOfMemory
	StatePreempted
	StateRequeued
	StatePending
	StateRunning
	StateSuspended
	numStates
)

var stateNames = [...]string{
	StateCompleted:   "COMPLETED",
	StateFailed:      "FAILED",
	StateCancelled:   "CANCELLED",
	StateTimeout:     "TIMEOUT",
	StateNodeFail:    "NODE_FAIL",
	StateOutOfMemory: "OUT_OF_MEMORY",
	StatePreempted:   "PREEMPTED",
	StateRequeued:    "REQUEUED",
	StatePending:     "PENDING",
	StateRunning:     "RUNNING",
	StateSuspended:   "SUSPENDED",
}

// String returns the canonical sacct spelling of the state.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("UNKNOWN(%d)", int(s))
	}
	return stateNames[s]
}

// Terminal reports whether the state is a terminal accounting state.
func (s State) Terminal() bool {
	switch s {
	case StatePending, StateRunning, StateSuspended, StateRequeued:
		return false
	}
	return true
}

// Success reports whether the state indicates the job ran to completion.
func (s State) Success() bool { return s == StateCompleted }

// ParseState converts a sacct State column value. sacct renders cancelled
// jobs as "CANCELLED by <uid>"; the suffix is accepted and dropped.
func ParseState(s string) (State, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	if strings.HasPrefix(t, "CANCELLED") {
		return StateCancelled, nil
	}
	for i, name := range stateNames {
		if t == name {
			return State(i), nil
		}
	}
	return 0, fmt.Errorf("slurm: unknown job state %q", s)
}

// States returns all states in presentation order. The returned slice is a
// fresh copy and safe to mutate.
func States() []State {
	out := make([]State, numStates)
	for i := range out {
		out[i] = State(i)
	}
	return out
}

// TerminalStates returns the terminal states in presentation order.
func TerminalStates() []State {
	var out []State
	for _, s := range States() {
		if s.Terminal() {
			out = append(out, s)
		}
	}
	return out
}
