package slurm

import (
	"fmt"
	"strconv"
	"strings"
)

// StepKind distinguishes the pseudo-steps Slurm creates for every job from
// the numbered steps launched by srun.
type StepKind int

const (
	// StepJob marks the job-level record itself ("12345").
	StepJob StepKind = iota
	// StepBatch marks the batch script pseudo-step ("12345.batch").
	StepBatch
	// StepExtern marks the external/prolog pseudo-step ("12345.extern").
	StepExtern
	// StepNumbered marks an srun-launched step ("12345.0", "12345.1", …).
	StepNumbered
)

// JobID identifies a job, array task, or job step the way sacct prints
// them: "123", "123.batch", "123.7", "123_4" (array task), "123_4.2".
type JobID struct {
	Job   int64    // base job id
	Array int64    // array task index, -1 when not an array task
	Kind  StepKind // which record this identifies
	Step  int64    // step number when Kind == StepNumbered
}

// NewJobID returns the job-level ID for job.
func NewJobID(job int64) JobID { return JobID{Job: job, Array: -1} }

// WithStep returns the numbered-step ID for this job.
func (id JobID) WithStep(n int64) JobID {
	id.Kind, id.Step = StepNumbered, n
	return id
}

// WithBatch returns the batch pseudo-step ID for this job.
func (id JobID) WithBatch() JobID {
	id.Kind, id.Step = StepBatch, 0
	return id
}

// IsStep reports whether the ID names a step rather than the job itself.
func (id JobID) IsStep() bool { return id.Kind != StepJob }

// Base returns the job-level ID with any step component stripped.
func (id JobID) Base() JobID {
	id.Kind, id.Step = StepJob, 0
	return id
}

// String renders the ID in sacct form.
func (id JobID) String() string {
	var b strings.Builder
	b.WriteString(strconv.FormatInt(id.Job, 10))
	if id.Array >= 0 {
		b.WriteByte('_')
		b.WriteString(strconv.FormatInt(id.Array, 10))
	}
	switch id.Kind {
	case StepBatch:
		b.WriteString(".batch")
	case StepExtern:
		b.WriteString(".extern")
	case StepNumbered:
		b.WriteByte('.')
		b.WriteString(strconv.FormatInt(id.Step, 10))
	}
	return b.String()
}

// ParseJobID parses a sacct JobID column value.
func ParseJobID(s string) (JobID, error) {
	t := strings.TrimSpace(s)
	id := JobID{Array: -1}
	if t == "" {
		return id, fmt.Errorf("slurm: empty job id")
	}
	stepPart := ""
	if i := strings.IndexByte(t, '.'); i >= 0 {
		t, stepPart = t[:i], t[i+1:]
	}
	if i := strings.IndexByte(t, '_'); i >= 0 {
		a, err := strconv.ParseInt(t[i+1:], 10, 64)
		if err != nil || a < 0 {
			return id, fmt.Errorf("slurm: bad array index in job id %q", s)
		}
		id.Array, t = a, t[:i]
	}
	j, err := strconv.ParseInt(t, 10, 64)
	if err != nil || j <= 0 {
		return id, fmt.Errorf("slurm: bad job id %q", s)
	}
	id.Job = j
	switch stepPart {
	case "":
		id.Kind = StepJob
	case "batch":
		id.Kind = StepBatch
	case "extern":
		id.Kind = StepExtern
	default:
		n, err := strconv.ParseInt(stepPart, 10, 64)
		if err != nil || n < 0 {
			return id, fmt.Errorf("slurm: bad step in job id %q", s)
		}
		id.Kind, id.Step = StepNumbered, n
	}
	return id, nil
}

// CompareJobID orders IDs by job, then array index, then step kind, then
// step number — the order sacct emits records in.
func CompareJobID(a, b JobID) int {
	switch {
	case a.Job != b.Job:
		return cmp64(a.Job, b.Job)
	case a.Array != b.Array:
		return cmp64(a.Array, b.Array)
	case a.Kind != b.Kind:
		return int(a.Kind) - int(b.Kind)
	default:
		return cmp64(a.Step, b.Step)
	}
}

func cmp64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
