package sacct

import (
	"context"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"slurmsight/internal/sacct/colstore"
	"slurmsight/internal/slurm"
)

// This file is the store's multi-core decode plane: lazy binary shards
// are independent mmap column regions, so Warm, full-Scan
// materialisation, and projected scans all decode per-shard over a
// bounded worker pool. Results install (or stream) in month order, so
// every output stays byte-identical to the sequential path — the
// parity property the parallel tests pin at workers 1/2/4/8.

// SetDecodeWorkers sets how many shards the store decodes concurrently
// when a Warm, Dump, or Scan has to materialise more than one lazy
// month: 0 (the default) resolves to runtime.GOMAXPROCS(0), 1 forces
// the sequential path, higher values cap the pool. Safe to call
// concurrently with readers.
func (s *Store) SetDecodeWorkers(n int) { s.decWorkers.Store(int32(n)) }

// DecodeWorkers returns the resolved shard-decode concurrency.
func (s *Store) DecodeWorkers() int {
	n := int(s.decWorkers.Load())
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return 1
	}
	return n
}

// lazyTarget is one shard picked for parallel materialisation.
type lazyTarget struct {
	m  Month
	sh *colstore.Shard
}

// warmMonths materialises the given lazy months (nil = every lazy
// month) decoding up to DecodeWorkers shards concurrently. Decodes run
// outside the store lock; results install under one lock in month
// order, and a shard whose materialisation lost a race to a concurrent
// Add/Warm is dropped rather than installed over newer data. The first
// error in month order is returned; failed or skipped shards stay lazy,
// so a later sequential pass re-surfaces the error at the exact shard
// the sequential path would have.
func (s *Store) warmMonths(ctx context.Context, months []Month) error {
	s.mu.RLock()
	var targets []lazyTarget
	if months == nil {
		for m, sh := range s.lazy {
			targets = append(targets, lazyTarget{m: m, sh: sh})
		}
	} else {
		for _, m := range months {
			if sh, ok := s.lazy[m]; ok {
				targets = append(targets, lazyTarget{m: m, sh: sh})
			}
		}
	}
	s.mu.RUnlock()
	if len(targets) == 0 {
		return nil
	}
	slices.SortFunc(targets, func(a, b lazyTarget) int { return a.m.Compare(b.m) })

	workers := min(s.DecodeWorkers(), len(targets))
	if workers <= 1 {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, t := range targets {
			if err := s.materializeLocked(ctx, t.m); err != nil {
				return err
			}
		}
		return nil
	}

	type decoded struct {
		recs []slurm.Record
		err  error
	}
	results := make([]decoded, len(targets))
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(targets) || failed.Load() {
					return
				}
				recs, err := targets[i].sh.DecodeAllCtx(ctx)
				if err != nil {
					failed.Store(true)
					results[i] = decoded{err: err}
					continue
				}
				if !targets[i].sh.Sorted() {
					slices.SortStableFunc(recs, recordCmp)
				}
				results[i] = decoded{recs: recs}
			}
		}()
	}
	wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for i, t := range targets {
		if firstErr == nil && results[i].err != nil {
			firstErr = results[i].err
		}
		if results[i].recs == nil {
			continue // failed or skipped: stays lazy
		}
		sh, still := s.lazy[t.m]
		if !still || sh != t.sh {
			continue // a concurrent materialisation won; keep its view
		}
		s.shards[t.m] = results[i].recs
		s.sorted[t.m] = true
		if minT, maxT, hasRows := t.sh.SubmitRange(); hasRows {
			s.ranges[t.m] = shardRange{min: minT.UnixNano(), max: maxT.UnixNano()}
		}
		delete(s.lazy, t.m)
	}
	return firstErr
}

// shardViewResult is one month's resolved view in the ordered prefetch
// pipeline.
type shardViewResult struct {
	recs   []slurm.Record
	sorted bool
	err    error
}

// prefetchViews decodes the months' shard views up to `workers` ahead
// of the consumer, preserving month order. The consume callback
// receives each view exactly in the order of `months`; returning false
// stops the pipeline (in-flight decodes finish and are dropped). The
// credit channel bounds decoded-but-unconsumed shards to `workers`, so
// a projected scan over hundreds of months holds at most a pool's
// worth of transient column decodes in memory.
func (s *Store) prefetchViews(ctx context.Context, months []Month, proj []string, workers int, consume func(shardViewResult) bool) {
	credits := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		credits <- struct{}{}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Join the workers before returning: an early-stopping consumer must
	// not leave a decode running against the mmap, or a Close right
	// after the scan would unmap memory mid-read. Result channels are
	// buffered and each index is sent exactly once, so every worker
	// reaches the stop check; LIFO order runs close(stop) first.
	defer wg.Wait()
	defer close(stop)
	out := make([]chan shardViewResult, len(months))
	for i := range out {
		out[i] = make(chan shardViewResult, 1)
	}
	var next atomic.Int64
	for w := 0; w < min(workers, len(months)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-credits:
				case <-stop:
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(months) {
					return
				}
				recs, sorted, err := s.shardView(ctx, months[i], proj)
				out[i] <- shardViewResult{recs: recs, sorted: sorted, err: err}
			}
		}()
	}
	for i := range months {
		v := <-out[i]
		if !consume(v) {
			return
		}
		select {
		case credits <- struct{}{}:
		default:
		}
	}
}
