package colstore

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slurmsight/internal/obs"
	"slurmsight/internal/slurm"
)

// Stats is a point-in-time snapshot of a file's read-side counters: the
// projection proof. BytesRead counts only the column regions actually
// decoded (plus the footer), so a two-field query over a 59-column shard
// shows two columns' bytes, not the shard's.
type Stats struct {
	ShardsOpened int64 // shards whose metadata was served
	ColumnsRead  int64 // column regions decoded (re-decodes count)
	BytesRead    int64 // bytes of column regions decoded + footer bytes
	BytesMapped  int64 // bytes of file mapped (or read on the fallback path)
	RowsDecoded  int64 // records materialised across all decodes
}

// File is an opened columnar store. Opening costs one trailer read, one
// footer parse, and one mapping — no row data is touched until a shard
// decode asks for it. A File is safe for concurrent shard decodes.
type File struct {
	path   string
	data   []byte
	mapped bool // data is an mmap region, not heap
	shards []*Shard

	mu sync.Mutex // guards interner (dict decode) only
	in *slurm.Interner

	shardsOpened atomic.Int64
	columnsRead  atomic.Int64
	bytesRead    atomic.Int64
	rowsDecoded  atomic.Int64

	// obs mirrors; nil until Instrument, and nil-safe throughout.
	cShards, cColumns, cBytes, cRows *obs.Counter
	gMapped                          *obs.Gauge
}

// Shard exposes one month's footer metadata and decodes its columns on
// demand.
type Shard struct {
	f    *File
	meta shardMeta
	byLC map[string]*columnMeta // lower-cased column name → meta
}

// Open maps path and parses its footer. A file without the columnar
// magic returns ErrNotColstore (fall back to the text loader); an
// unknown version returns ErrVersion; structural damage returns
// ErrCorrupt.
func Open(path string) (*File, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	f := &File{path: path, data: data, mapped: mapped, in: slurm.NewInterner()}
	if err := f.parse(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (f *File) parse() error {
	data := f.data
	if len(data) < len(headerMagic) || string(data[:len(headerMagic)]) != headerMagic {
		return ErrNotColstore
	}
	if len(data) < headerLen+trailerLen {
		// The magic is there but the file cannot hold a trailer: a
		// truncated columnar file, not a text dump — no fallback.
		return fmt.Errorf("%w: %d bytes is too short for a columnar file", ErrCorrupt, len(data))
	}
	version := binary.LittleEndian.Uint16(data[len(headerMagic):])
	if version != Version {
		return fmt.Errorf("%w: file is v%d, reader is v%d", ErrVersion, version, Version)
	}
	trailer := data[len(data)-trailerLen:]
	if string(trailer[12:]) != trailerMagic {
		return fmt.Errorf("%w: trailer magic missing", ErrCorrupt)
	}
	footOff := binary.LittleEndian.Uint64(trailer)
	footCRC := binary.LittleEndian.Uint32(trailer[8:])
	if footOff < uint64(headerLen) || footOff > uint64(len(data)-trailerLen) {
		return fmt.Errorf("%w: footer offset %d outside file", ErrCorrupt, footOff)
	}
	footer := data[footOff : len(data)-trailerLen]
	if checksum(footer) != footCRC {
		return fmt.Errorf("%w: footer checksum mismatch", ErrCorrupt)
	}
	metas, err := parseFooter(footer, footOff) // columns must precede the footer
	if err != nil {
		return err
	}
	f.bytesRead.Add(int64(len(footer)))
	f.shards = make([]*Shard, len(metas))
	for i, m := range metas {
		byLC := make(map[string]*columnMeta, len(m.cols))
		sh := &Shard{f: f, meta: m, byLC: byLC}
		for j := range sh.meta.cols {
			byLC[strings.ToLower(sh.meta.cols[j].name)] = &sh.meta.cols[j]
		}
		f.shards[i] = sh
	}
	return nil
}

// Close releases the mapping. Decoded records survive Close; undecoded
// shards do not.
func (f *File) Close() error {
	data := f.data
	f.data = nil
	if f.mapped && data != nil {
		return unmapFile(data)
	}
	return nil
}

// Path returns the file the store was opened from.
func (f *File) Path() string { return f.path }

// Size returns the mapped file size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Shards returns the month shards in file order.
func (f *File) Shards() []*Shard { return f.shards }

// Instrument mirrors the file's counters into reg (colstore_* metrics).
// Counts accumulated before Instrument are carried over.
func (f *File) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	f.cShards = reg.Counter("colstore_shards_opened_total")
	f.cColumns = reg.Counter("colstore_columns_read_total")
	f.cBytes = reg.Counter("colstore_bytes_read_total")
	f.cRows = reg.Counter("colstore_rows_decoded_total")
	f.gMapped = reg.Gauge("colstore_bytes_mapped")
	f.cShards.Add(f.shardsOpened.Load())
	f.cColumns.Add(f.columnsRead.Load())
	f.cBytes.Add(f.bytesRead.Load())
	f.cRows.Add(f.rowsDecoded.Load())
	f.gMapped.Set(int64(len(f.data)))
}

// Stats snapshots the read counters.
func (f *File) Stats() Stats {
	return Stats{
		ShardsOpened: f.shardsOpened.Load(),
		ColumnsRead:  f.columnsRead.Load(),
		BytesRead:    f.bytesRead.Load(),
		BytesMapped:  int64(len(f.data)),
		RowsDecoded:  f.rowsDecoded.Load(),
	}
}

// Year, Mon, Rows, Sorted, and the submit range expose the footer
// metadata a reload needs — no row bytes are touched.
func (s *Shard) Year() int       { return s.meta.year }
func (s *Shard) Mon() time.Month { return s.meta.mon }
func (s *Shard) Rows() int       { return s.meta.rows }
func (s *Shard) Sorted() bool    { return s.meta.sorted }

// SubmitRange returns the shard's min and max submit times; ok is false
// for an empty shard.
func (s *Shard) SubmitRange() (min, max time.Time, ok bool) {
	if s.meta.rows == 0 {
		return time.Time{}, time.Time{}, false
	}
	return time.Unix(0, s.meta.minSub).UTC(), time.Unix(0, s.meta.maxSub).UTC(), true
}

// ColumnNames returns the shard's column names in file order.
func (s *Shard) ColumnNames() []string {
	out := make([]string, len(s.meta.cols))
	for i := range s.meta.cols {
		out[i] = s.meta.cols[i].name
	}
	return out
}

// ColumnBytes returns the stored size of one column region, 0 when the
// column is unknown.
func (s *Shard) ColumnBytes(name string) int64 {
	if c, ok := s.byLC[strings.ToLower(name)]; ok {
		return int64(c.length)
	}
	return 0
}

// DecodeAll materialises every column into records.
func (s *Shard) DecodeAll() ([]slurm.Record, error) {
	return s.decode(context.Background(), nil)
}

// DecodeAllCtx is DecodeAll under a request context: when the context
// carries an active obs span, the decode reports itself as a
// "colstore-shard-open" child span with shard/row/column/byte attrs —
// the serving plane's per-request decomposition of first-touch cost.
func (s *Shard) DecodeAllCtx(ctx context.Context) ([]slurm.Record, error) {
	return s.decode(ctx, nil)
}

// DecodeColumns materialises only the named columns (canonical slurm
// field names, case-insensitive); every other record field is left
// zero. Use ColumnsFor to map a query field selection to column names.
func (s *Shard) DecodeColumns(cols []string) ([]slurm.Record, error) {
	if cols == nil {
		cols = ColumnNames()
	}
	return s.decode(context.Background(), cols)
}

// DecodeColumnsCtx is DecodeColumns with per-request span reporting,
// as DecodeAllCtx.
func (s *Shard) DecodeColumnsCtx(ctx context.Context, cols []string) ([]slurm.Record, error) {
	if cols == nil {
		cols = ColumnNames()
	}
	return s.decode(ctx, cols)
}

func (s *Shard) decode(ctx context.Context, cols []string) (_ []slurm.Record, err error) {
	s.f.shardsOpened.Add(1)
	s.f.cShards.Inc()
	if cols == nil {
		cols = ColumnNames()
	}
	var colBytes int64 // bytes of column regions this decode touched
	if sp := obs.SpanFromContext(ctx).Child("colstore-shard-open"); sp != nil {
		sp.SetAttr("shard", fmt.Sprintf("%04d-%02d", s.meta.year, int(s.meta.mon)))
		sp.SetAttrInt("rows", int64(s.meta.rows))
		sp.SetAttrInt("columns", int64(len(cols)))
		defer func() {
			sp.SetAttrInt("bytes", colBytes)
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
		}()
	}
	recs := make([]slurm.Record, s.meta.rows)
	for _, name := range cols {
		def, ok := columnIndex[strings.ToLower(strings.TrimSpace(name))]
		if !ok {
			return nil, fmt.Errorf("colstore: unknown column %q", name)
		}
		cm, ok := s.byLC[strings.ToLower(def.name)]
		if !ok {
			return nil, fmt.Errorf("%w: shard %04d-%02d has no column %s",
				ErrCorrupt, s.meta.year, int(s.meta.mon), def.name)
		}
		if cm.kind != def.kind {
			return nil, fmt.Errorf("%w: column %s stored as kind %d, schema wants %d",
				ErrCorrupt, def.name, cm.kind, def.kind)
		}
		region, err := s.f.region(cm)
		if err != nil {
			return nil, err
		}
		colBytes += int64(len(region))
		dec, err := s.newDecoder(cm.kind, region)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", def.name, err)
		}
		for i := range recs {
			if err := def.dec(dec, &recs[i]); err != nil {
				return nil, fmt.Errorf("column %s row %d: %w", def.name, i, err)
			}
		}
		if dec.r.len() != 0 {
			return nil, fmt.Errorf("%w: column %s has %d trailing bytes",
				ErrCorrupt, def.name, dec.r.len())
		}
	}
	s.f.rowsDecoded.Add(int64(len(recs)))
	s.f.cRows.Add(int64(len(recs)))
	return recs, nil
}

// newDecoder builds a column decoder, serialising interner access —
// the only mutable state shared between concurrent decodes.
func (s *Shard) newDecoder(kind colKind, region []byte) (*colDecoder, error) {
	if !kind.hasDict() {
		return newColDecoder(kind, region, nil)
	}
	s.f.mu.Lock()
	defer s.f.mu.Unlock()
	return newColDecoder(kind, region, s.f.in)
}

// region slices one verified column out of the mapping, charging the
// read counters.
func (f *File) region(cm *columnMeta) ([]byte, error) {
	if f.data == nil {
		return nil, fmt.Errorf("colstore: %s: file is closed", f.path)
	}
	b := f.data[cm.offset : cm.offset+cm.length]
	if checksum(b) != cm.crc {
		return nil, fmt.Errorf("%w: column %s checksum mismatch", ErrCorrupt, cm.name)
	}
	f.columnsRead.Add(1)
	f.bytesRead.Add(int64(len(b)))
	f.cColumns.Inc()
	f.cBytes.Add(int64(len(b)))
	return b, nil
}

// SniffBytes reports whether b starts with the columnar magic — the
// in-memory counterpart of Sniff, for request bodies that may carry
// either format.
func SniffBytes(b []byte) bool {
	return len(b) >= len(headerMagic) && string(b[:len(headerMagic)]) == headerMagic
}

// Sniff reports whether path starts with the columnar magic, without
// parsing anything else. The cheap auto-detect for format selection.
func Sniff(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	buf := make([]byte, len(headerMagic))
	if _, err := f.Read(buf); err != nil {
		return false
	}
	return string(buf) == headerMagic
}
