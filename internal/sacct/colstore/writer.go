package colstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"slurmsight/internal/slurm"
)

// ShardInput is one month shard to serialise. Records should be in
// (submit, job-id) emission order — the writer detects and records
// sortedness in the footer so readers can skip the re-sort on load, but
// unsorted shards are stored faithfully.
type ShardInput struct {
	Year    int
	Mon     time.Month
	Records []slurm.Record
}

// Write serialises shards into the columnar format. Shards are written
// in the order given; sacct passes them chronologically.
func Write(w io.Writer, shards []ShardInput) error {
	bw := bufio.NewWriterSize(w, 1<<20)

	header := make([]byte, 0, headerLen)
	header = append(header, headerMagic...)
	header = binary.LittleEndian.AppendUint16(header, Version)
	header = binary.LittleEndian.AppendUint16(header, 0) // reserved
	if _, err := bw.Write(header); err != nil {
		return err
	}
	offset := uint64(headerLen)

	enc := &colEncoder{dict: make(map[string]uint64)}
	var region []byte
	metas := make([]shardMeta, 0, len(shards))
	for _, in := range shards {
		meta := shardMeta{
			year: in.Year,
			mon:  in.Mon,
			rows: len(in.Records),
			cols: make([]columnMeta, 0, len(columns)),
		}
		meta.sorted, meta.minSub, meta.maxSub = shardStats(in.Records)
		for ci := range columns {
			col := &columns[ci]
			enc.reset()
			for ri := range in.Records {
				col.enc(enc, &in.Records[ri])
			}
			region = enc.region(col.kind, region)
			meta.cols = append(meta.cols, columnMeta{
				name:   col.name,
				kind:   col.kind,
				offset: offset,
				length: uint64(len(region)),
				crc:    checksum(region),
			})
			if _, err := bw.Write(region); err != nil {
				return err
			}
			offset += uint64(len(region))
		}
		metas = append(metas, meta)
	}

	footer := appendFooter(nil, metas)
	if _, err := bw.Write(footer); err != nil {
		return err
	}
	trailer := make([]byte, 0, trailerLen)
	trailer = binary.LittleEndian.AppendUint64(trailer, offset)
	trailer = binary.LittleEndian.AppendUint32(trailer, checksum(footer))
	trailer = append(trailer, trailerMagic...)
	if _, err := bw.Write(trailer); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteFile serialises shards to path via a temp-file rename, so a
// crashed dump never leaves a half-written store behind.
func WriteFile(path string, shards []ShardInput) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = Write(f, shards)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("colstore: writing %s: %w", path, err)
	}
	return os.Rename(tmp, path)
}

// shardStats reports whether records are already in (submit, job-id)
// emission order and the submit range of the shard.
func shardStats(recs []slurm.Record) (sorted bool, minSub, maxSub int64) {
	sorted = true
	for i := range recs {
		ns := recs[i].Submit.UnixNano()
		if i == 0 {
			minSub, maxSub = ns, ns
			continue
		}
		if ns < minSub {
			minSub = ns
		}
		if ns > maxSub {
			maxSub = ns
		}
		if sorted && recordCompare(&recs[i-1], &recs[i]) > 0 {
			sorted = false
		}
	}
	return sorted, minSub, maxSub
}

// recordCompare is the shard emission order shared with sacct: submit
// time, ties broken by sacct job-id order.
func recordCompare(a, b *slurm.Record) int {
	if !a.Submit.Equal(b.Submit) {
		if a.Submit.Before(b.Submit) {
			return -1
		}
		return 1
	}
	return slurm.CompareJobID(a.ID, b.ID)
}
