//go:build !linux

package colstore

import "os"

// mapFile reads path into the heap on platforms without the mmap fast
// path; the format stays identical, only the residency strategy differs.
func mapFile(path string) (data []byte, mapped bool, err error) {
	data, err = os.ReadFile(path)
	return data, false, err
}

func unmapFile([]byte) error { return nil }
