// Package colstore implements the binary columnar shard store behind
// sacct.DumpBinary/OpenBinary: a versioned, mmap-friendly on-disk format
// that lays each month shard out column-major so readers materialise
// only the columns a query needs and a reload costs O(open + footer)
// instead of O(parse) over the whole trace.
//
// File layout (DESIGN.md §5g):
//
//	header   : magic "SLURMCOL" | uint16 LE version | uint16 LE reserved
//	shards   : per month, the column regions back to back, each region
//	           [dictionary]? + row-data (varint streams, see schema.go)
//	footer   : shard directory — per shard the month, row count, sorted
//	           flag, min/max submit (unix ns), and per column the name,
//	           kind, absolute offset, length, and CRC-32 of the region
//	trailer  : uint64 LE footer offset | uint32 LE footer CRC-32 |
//	           magic "LOCMRULS"
//
// Readers locate the footer from the fixed-size trailer, verify its
// checksum, and then touch column regions lazily; each region's CRC is
// verified on first read, so a projected query never pays for (or
// validates) columns it does not decode.
package colstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// Format constants. Version is bumped whenever the column schema, the
// encodings, or the footer layout change incompatibly; readers reject
// any version they do not know rather than guessing.
const (
	headerMagic  = "SLURMCOL"
	trailerMagic = "LOCMRULS"
	// Version is the current on-disk format version.
	Version = 1

	headerLen  = len(headerMagic) + 4 // magic + version + reserved
	trailerLen = 8 + 4 + len(trailerMagic)
)

// Typed errors. ErrNotColstore signals "this is not a columnar file at
// all" — callers fall back to the text loader; the others mean the file
// is columnar but unusable.
var (
	// ErrNotColstore marks a file without the columnar magic; the clean
	// fallback signal to the pipe-text path.
	ErrNotColstore = errors.New("colstore: not a columnar store file")
	// ErrVersion marks a columnar file written by an unknown format
	// version.
	ErrVersion = errors.New("colstore: unsupported format version")
	// ErrCorrupt marks a structurally invalid or checksum-failing file.
	ErrCorrupt = errors.New("colstore: corrupt file")
)

// colKind tags a column's encoding in the footer so readers can refuse
// a kind mismatch (schema drift) without decoding anything.
type colKind uint8

const (
	kindTime  colKind = iota + 1 // delta + zigzag varint unix-ns, 0 = zero time
	kindDur                      // zigzag varint nanoseconds
	kindInt                      // zigzag varint
	kindDict                     // dictionary + uvarint index per row
	kindState                    // uvarint slurm.State ordinal
	kindJobID                    // uvarint job, zigzag array, uvarint kind, uvarint step
	kindExit                     // zigzag code, zigzag signal
	kindMem                      // zigzag bytes, uvarint per-CPU flag
	kindTRES                     // key dictionary + per row: count, (key idx, zigzag value)…
)

func (k colKind) valid() bool { return k >= kindTime && k <= kindTRES }

// hasDict reports whether a column kind carries a dictionary header.
func (k colKind) hasDict() bool { return k == kindDict || k == kindTRES }

// zigzag folds signed ints into unsigned so small magnitudes of either
// sign stay short in varint form.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendUvarint appends u in unsigned LEB128 form.
func appendUvarint(b []byte, u uint64) []byte {
	return binary.AppendUvarint(b, u)
}

// byteReader walks an encoded region with bounds checking; every decode
// error maps to ErrCorrupt so callers need not distinguish truncation
// from garbage.
type byteReader struct {
	b   []byte
	pos int
}

func (r *byteReader) len() int { return len(r.b) - r.pos }

func (r *byteReader) uvarint() (uint64, error) {
	u, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", ErrCorrupt, r.pos)
	}
	r.pos += n
	return u, nil
}

func (r *byteReader) varint() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return unzigzag(u), nil
}

func (r *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.len() < n {
		return nil, fmt.Errorf("%w: %d bytes wanted, %d left", ErrCorrupt, n, r.len())
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.len()) {
		return "", fmt.Errorf("%w: string length %d exceeds region", ErrCorrupt, n)
	}
	b, err := r.bytes(int(n))
	return string(b), err
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// columnMeta is one footer entry: where a column region lives and how to
// check it.
type columnMeta struct {
	name   string // canonical slurm field name (e.g. "Submit", "NCPUS")
	kind   colKind
	offset uint64 // absolute file offset of the region
	length uint64
	crc    uint32
}

// shardMeta is the per-shard footer record: everything a reader needs
// to answer "does this shard overlap the query window and where are its
// columns" without touching row data.
type shardMeta struct {
	year   int
	mon    time.Month
	rows   int
	sorted bool  // rows are in (submit, job-id) emission order
	minSub int64 // min/max submit unix-ns over the shard; 0,0 when empty
	maxSub int64
	cols   []columnMeta
}

// appendFooter encodes the shard directory.
func appendFooter(b []byte, shards []shardMeta) []byte {
	b = appendUvarint(b, uint64(len(shards)))
	for _, sh := range shards {
		b = appendUvarint(b, uint64(sh.year))
		b = appendUvarint(b, uint64(sh.mon))
		b = appendUvarint(b, uint64(sh.rows))
		flags := uint64(0)
		if sh.sorted {
			flags = 1
		}
		b = appendUvarint(b, flags)
		b = appendUvarint(b, zigzag(sh.minSub))
		b = appendUvarint(b, zigzag(sh.maxSub))
		b = appendUvarint(b, uint64(len(sh.cols)))
		for _, c := range sh.cols {
			b = appendString(b, c.name)
			b = append(b, byte(c.kind))
			b = appendUvarint(b, c.offset)
			b = appendUvarint(b, c.length)
			b = binary.LittleEndian.AppendUint32(b, c.crc)
		}
	}
	return b
}

// parseFooter decodes the shard directory, validating every offset
// against the file size.
func parseFooter(data []byte, fileSize uint64) ([]shardMeta, error) {
	r := &byteReader{b: data}
	nshards, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nshards > uint64(len(data)) { // each shard needs ≥1 footer byte
		return nil, fmt.Errorf("%w: shard count %d exceeds footer size", ErrCorrupt, nshards)
	}
	shards := make([]shardMeta, 0, nshards)
	for i := uint64(0); i < nshards; i++ {
		var sh shardMeta
		year, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		mon, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if mon < 1 || mon > 12 {
			return nil, fmt.Errorf("%w: shard month %d out of range", ErrCorrupt, mon)
		}
		rows, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		flags, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		minSub, err := r.varint()
		if err != nil {
			return nil, err
		}
		maxSub, err := r.varint()
		if err != nil {
			return nil, err
		}
		ncols, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if ncols > uint64(r.len()) {
			return nil, fmt.Errorf("%w: column count %d exceeds footer size", ErrCorrupt, ncols)
		}
		sh.year, sh.mon = int(year), time.Month(mon)
		sh.rows, sh.sorted = int(rows), flags&1 != 0
		sh.minSub, sh.maxSub = minSub, maxSub
		sh.cols = make([]columnMeta, 0, ncols)
		for j := uint64(0); j < ncols; j++ {
			var c columnMeta
			if c.name, err = r.str(); err != nil {
				return nil, err
			}
			kb, err := r.bytes(1)
			if err != nil {
				return nil, err
			}
			c.kind = colKind(kb[0])
			if !c.kind.valid() {
				return nil, fmt.Errorf("%w: column %s has unknown kind %d", ErrCorrupt, c.name, kb[0])
			}
			if c.offset, err = r.uvarint(); err != nil {
				return nil, err
			}
			if c.length, err = r.uvarint(); err != nil {
				return nil, err
			}
			crcb, err := r.bytes(4)
			if err != nil {
				return nil, err
			}
			c.crc = binary.LittleEndian.Uint32(crcb)
			if c.offset < uint64(headerLen) || c.length > fileSize || c.offset > fileSize-c.length {
				return nil, fmt.Errorf("%w: column %s region [%d,+%d) outside file of %d bytes",
					ErrCorrupt, c.name, c.offset, c.length, fileSize)
			}
			sh.cols = append(sh.cols, c)
		}
		shards = append(shards, sh)
	}
	if r.len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing footer bytes", ErrCorrupt, r.len())
	}
	return shards, nil
}

func checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
