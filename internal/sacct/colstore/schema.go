package colstore

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"slurmsight/internal/slurm"
)

// The column schema: one column per curated slurm field, named exactly
// after the field catalogue so query field selections project directly
// onto column reads. The derived "Backfill" field is the one catalogue
// entry without a column — it reads through "Flags". Column order and
// encodings are pinned by the format Version; changing either requires
// a version bump.

// colDef binds one column's name and encoding to Record accessors.
type colDef struct {
	name string
	kind colKind
	enc  func(e *colEncoder, r *slurm.Record)
	dec  func(d *colDecoder, r *slurm.Record) error
}

// colEncoder accumulates one column region: the row stream plus, for
// dictionary columns, the first-seen-order dictionary.
type colEncoder struct {
	buf     []byte
	prev    int64 // delta chain for time columns
	dict    map[string]uint64
	dictBuf []byte
}

func (e *colEncoder) reset() {
	e.buf, e.dictBuf = e.buf[:0], e.dictBuf[:0]
	e.prev = 0
	clear(e.dict)
}

func (e *colEncoder) uVal(u uint64)  { e.buf = appendUvarint(e.buf, u) }
func (e *colEncoder) intVal(v int64) { e.uVal(zigzag(v)) }

// timeVal delta-encodes a timestamp: 0 marks the zero time (sacct's
// "Unknown") and leaves the delta chain untouched; any other value u
// encodes zigzag(ns−prev)+1.
func (e *colEncoder) timeVal(t time.Time) {
	if t.IsZero() {
		e.uVal(0)
		return
	}
	ns := t.UnixNano()
	e.uVal(zigzag(ns-e.prev) + 1)
	e.prev = ns
}

func (e *colEncoder) dictIdx(s string) uint64 {
	idx, ok := e.dict[s]
	if !ok {
		idx = uint64(len(e.dict))
		e.dict[s] = idx
		e.dictBuf = appendString(e.dictBuf, s)
	}
	return idx
}

func (e *colEncoder) dictVal(s string) { e.uVal(e.dictIdx(s)) }

// tresVal encodes one TRES map natively — key-dictionary index plus
// zigzag value per entry, keys in sorted order — so the exact int64
// base-unit values survive, unlike the 2-decimal text rendering. The
// leading count is 0 for a nil map, len+1 otherwise (an empty non-nil
// map round-trips as empty, matching the text parser's output).
func (e *colEncoder) tresVal(m slurm.TRES) {
	if m == nil {
		e.uVal(0)
		return
	}
	e.uVal(uint64(len(m)) + 1)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		e.uVal(e.dictIdx(k))
		e.intVal(m[k])
	}
}

// region assembles the final column bytes: dictionary header first for
// dictionary-bearing kinds, then the row stream. The result aliases dst.
func (e *colEncoder) region(kind colKind, dst []byte) []byte {
	dst = dst[:0]
	if kind.hasDict() {
		dst = appendUvarint(dst, uint64(len(e.dict)))
		dst = append(dst, e.dictBuf...)
	}
	return append(dst, e.buf...)
}

// colDecoder walks one column region row by row. Dictionary strings are
// interned through the file-level interner so a value repeated across
// shards materialises once per file, and the Flags cache parses each
// dictionary entry once per decode instead of once per row.
type colDecoder struct {
	r    byteReader
	prev int64
	dict []string

	flagsCache [][]string
	flagsDone  []bool
}

// newColDecoder wraps a verified column region, materialising the
// dictionary for dictionary-bearing kinds.
func newColDecoder(kind colKind, data []byte, in *slurm.Interner) (*colDecoder, error) {
	d := &colDecoder{r: byteReader{b: data}}
	if !kind.hasDict() {
		return d, nil
	}
	n, err := d.r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.r.len()) {
		return nil, fmt.Errorf("%w: dictionary of %d entries exceeds region", ErrCorrupt, n)
	}
	d.dict = make([]string, n)
	for i := range d.dict {
		s, err := d.r.str()
		if err != nil {
			return nil, err
		}
		d.dict[i] = in.InternString(s)
	}
	return d, nil
}

func (d *colDecoder) timeVal() (time.Time, error) {
	u, err := d.r.uvarint()
	if err != nil || u == 0 {
		return time.Time{}, err
	}
	d.prev += unzigzag(u - 1)
	return time.Unix(0, d.prev).UTC(), nil
}

func (d *colDecoder) dictIdx() (int, error) {
	u, err := d.r.uvarint()
	if err != nil {
		return 0, err
	}
	if u >= uint64(len(d.dict)) {
		return 0, fmt.Errorf("%w: dictionary index %d of %d", ErrCorrupt, u, len(d.dict))
	}
	return int(u), nil
}

// tresVal decodes one natively encoded TRES map.
func (d *colDecoder) tresVal() (slurm.TRES, error) {
	n, err := d.r.uvarint()
	if err != nil || n == 0 {
		return nil, err
	}
	n--
	if n > uint64(d.r.len()) { // each entry needs ≥2 bytes
		return nil, fmt.Errorf("%w: TRES entry count %d exceeds region", ErrCorrupt, n)
	}
	m := make(slurm.TRES, n)
	for i := uint64(0); i < n; i++ {
		idx, err := d.dictIdx()
		if err != nil {
			return nil, err
		}
		v, err := d.r.varint()
		if err != nil {
			return nil, err
		}
		m[d.dict[idx]] = v
	}
	return m, nil
}

// --- column constructors ---

func timeCol(name string, at func(*slurm.Record) *time.Time) colDef {
	return colDef{name: name, kind: kindTime,
		enc: func(e *colEncoder, r *slurm.Record) { e.timeVal(*at(r)) },
		dec: func(d *colDecoder, r *slurm.Record) error {
			t, err := d.timeVal()
			if err != nil {
				return err
			}
			*at(r) = t
			return nil
		}}
}

func durCol(name string, at func(*slurm.Record) *time.Duration) colDef {
	return colDef{name: name, kind: kindDur,
		enc: func(e *colEncoder, r *slurm.Record) { e.intVal(int64(*at(r))) },
		dec: func(d *colDecoder, r *slurm.Record) error {
			v, err := d.r.varint()
			if err != nil {
				return err
			}
			*at(r) = time.Duration(v)
			return nil
		}}
}

func intCol(name string, at func(*slurm.Record) *int64) colDef {
	return colDef{name: name, kind: kindInt,
		enc: func(e *colEncoder, r *slurm.Record) { e.intVal(*at(r)) },
		dec: func(d *colDecoder, r *slurm.Record) error {
			v, err := d.r.varint()
			if err != nil {
				return err
			}
			*at(r) = v
			return nil
		}}
}

func dictCol(name string, at func(*slurm.Record) *string) colDef {
	return colDef{name: name, kind: kindDict,
		enc: func(e *colEncoder, r *slurm.Record) { e.dictVal(*at(r)) },
		dec: func(d *colDecoder, r *slurm.Record) error {
			idx, err := d.dictIdx()
			if err != nil {
				return err
			}
			*at(r) = d.dict[idx]
			return nil
		}}
}

// stateCount bounds the State ordinal check on decode.
var stateCount = len(slurm.States())

func stateCol() colDef {
	return colDef{name: "State", kind: kindState,
		enc: func(e *colEncoder, r *slurm.Record) { e.uVal(uint64(r.State)) },
		dec: func(d *colDecoder, r *slurm.Record) error {
			u, err := d.r.uvarint()
			if err != nil {
				return err
			}
			if u >= uint64(stateCount) {
				return fmt.Errorf("%w: state ordinal %d of %d", ErrCorrupt, u, stateCount)
			}
			r.State = slurm.State(u)
			return nil
		}}
}

func jobIDCol() colDef {
	return colDef{name: "JobID", kind: kindJobID,
		enc: func(e *colEncoder, r *slurm.Record) {
			e.intVal(r.ID.Job)
			e.intVal(r.ID.Array)
			e.uVal(uint64(r.ID.Kind))
			e.intVal(r.ID.Step)
		},
		dec: func(d *colDecoder, r *slurm.Record) error {
			job, err := d.r.varint()
			if err != nil {
				return err
			}
			arr, err := d.r.varint()
			if err != nil {
				return err
			}
			kind, err := d.r.uvarint()
			if err != nil {
				return err
			}
			if kind > uint64(slurm.StepNumbered) {
				return fmt.Errorf("%w: job-id step kind %d", ErrCorrupt, kind)
			}
			step, err := d.r.varint()
			if err != nil {
				return err
			}
			r.ID = slurm.JobID{Job: job, Array: arr, Kind: slurm.StepKind(kind), Step: step}
			return nil
		}}
}

func exitCol() colDef {
	return colDef{name: "ExitCode", kind: kindExit,
		enc: func(e *colEncoder, r *slurm.Record) {
			e.intVal(int64(r.ExitCode))
			e.intVal(int64(r.ExitSignal))
		},
		dec: func(d *colDecoder, r *slurm.Record) error {
			code, err := d.r.varint()
			if err != nil {
				return err
			}
			sig, err := d.r.varint()
			if err != nil {
				return err
			}
			r.ExitCode, r.ExitSignal = int(code), int(sig)
			return nil
		}}
}

func memCol() colDef {
	return colDef{name: "ReqMem", kind: kindMem,
		enc: func(e *colEncoder, r *slurm.Record) {
			e.intVal(r.ReqMem)
			per := uint64(0)
			if r.ReqMemPerCPU {
				per = 1
			}
			e.uVal(per)
		},
		dec: func(d *colDecoder, r *slurm.Record) error {
			v, err := d.r.varint()
			if err != nil {
				return err
			}
			per, err := d.r.uvarint()
			if err != nil {
				return err
			}
			r.ReqMem, r.ReqMemPerCPU = v, per&1 != 0
			return nil
		}}
}

// flagsCol dictionary-encodes the joined Flags rendering and splits
// each dictionary entry once per decode. Cached slices are clipped so a
// consumer append reallocates instead of scribbling on shared backing.
func flagsCol() colDef {
	fld, _ := slurm.FieldByName("Flags")
	return colDef{name: "Flags", kind: kindDict,
		enc: func(e *colEncoder, r *slurm.Record) { e.dictVal(fld.Get(r)) },
		dec: func(d *colDecoder, r *slurm.Record) error {
			idx, err := d.dictIdx()
			if err != nil {
				return err
			}
			if d.flagsCache == nil {
				d.flagsCache = make([][]string, len(d.dict))
				d.flagsDone = make([]bool, len(d.dict))
			}
			if !d.flagsDone[idx] {
				var tmp slurm.Record
				if err := fld.Set(&tmp, d.dict[idx]); err != nil {
					return fmt.Errorf("%w: flags %q: %v", ErrCorrupt, d.dict[idx], err)
				}
				fl := tmp.Flags
				if fl != nil {
					fl = fl[:len(fl):len(fl)]
				}
				d.flagsCache[idx], d.flagsDone[idx] = fl, true
			}
			r.Flags = d.flagsCache[idx]
			return nil
		}}
}

// tresCol encodes TRES maps natively (key dictionary + int64 values)
// rather than through the text rendering, which rounds byte quantities
// to two decimals and would lose precision on round trip.
func tresCol(name string, at func(*slurm.Record) *slurm.TRES) colDef {
	return colDef{name: name, kind: kindTRES,
		enc: func(e *colEncoder, r *slurm.Record) { e.tresVal(*at(r)) },
		dec: func(d *colDecoder, r *slurm.Record) error {
			m, err := d.tresVal()
			if err != nil {
				return err
			}
			*at(r) = m
			return nil
		}}
}

// columns is the pinned column order: the catalogue order of fields.go
// minus the derived Backfill entry.
var columns = buildColumns()

// columnIndex maps lower-cased column names to their definition.
var columnIndex = func() map[string]*colDef {
	idx := make(map[string]*colDef, len(columns))
	for i := range columns {
		idx[strings.ToLower(columns[i].name)] = &columns[i]
	}
	return idx
}()

func buildColumns() []colDef {
	return []colDef{
		// Job identification.
		jobIDCol(),
		dictCol("JobName", func(r *slurm.Record) *string { return &r.JobName }),
		dictCol("User", func(r *slurm.Record) *string { return &r.User }),
		intCol("UID", func(r *slurm.Record) *int64 { return &r.UID }),
		dictCol("Group", func(r *slurm.Record) *string { return &r.Group }),
		dictCol("Account", func(r *slurm.Record) *string { return &r.Account }),
		dictCol("Cluster", func(r *slurm.Record) *string { return &r.Cluster }),
		dictCol("Partition", func(r *slurm.Record) *string { return &r.Partition }),
		dictCol("Reservation", func(r *slurm.Record) *string { return &r.Reservation }),
		intCol("ReservationID", func(r *slurm.Record) *int64 { return &r.ReservationID }),
		// Timing.
		timeCol("Submit", func(r *slurm.Record) *time.Time { return &r.Submit }),
		timeCol("Start", func(r *slurm.Record) *time.Time { return &r.Start }),
		timeCol("End", func(r *slurm.Record) *time.Time { return &r.End }),
		durCol("Elapsed", func(r *slurm.Record) *time.Duration { return &r.Elapsed }),
		durCol("Timelimit", func(r *slurm.Record) *time.Duration { return &r.Timelimit }),
		// Resource requests.
		intCol("NNodes", func(r *slurm.Record) *int64 { return &r.NNodes }),
		intCol("NCPUS", func(r *slurm.Record) *int64 { return &r.NCPUs }),
		intCol("NTasks", func(r *slurm.Record) *int64 { return &r.NTasks }),
		intCol("ReqNodes", func(r *slurm.Record) *int64 { return &r.ReqNodes }),
		intCol("ReqCPUS", func(r *slurm.Record) *int64 { return &r.ReqCPUs }),
		memCol(),
		dictCol("ReqGRES", func(r *slurm.Record) *string { return &r.ReqGRES }),
		dictCol("Licenses", func(r *slurm.Record) *string { return &r.Licenses }),
		dictCol("Layout", func(r *slurm.Record) *string { return &r.Layout }),
		// Resource usage.
		intCol("VMSize", func(r *slurm.Record) *int64 { return &r.VMSize }),
		intCol("MaxVMSize", func(r *slurm.Record) *int64 { return &r.MaxVMSize }),
		durCol("AveCPU", func(r *slurm.Record) *time.Duration { return &r.AveCPU }),
		intCol("MaxRSS", func(r *slurm.Record) *int64 { return &r.MaxRSS }),
		intCol("AveRSS", func(r *slurm.Record) *int64 { return &r.AveRSS }),
		intCol("AvePages", func(r *slurm.Record) *int64 { return &r.AvePages }),
		durCol("TotalCPU", func(r *slurm.Record) *time.Duration { return &r.TotalCPU }),
		durCol("UserCPU", func(r *slurm.Record) *time.Duration { return &r.UserCPU }),
		durCol("SystemCPU", func(r *slurm.Record) *time.Duration { return &r.SystemCPU }),
		dictCol("NodeList", func(r *slurm.Record) *string { return &r.NodeList }),
		intCol("ConsumedEnergy", func(r *slurm.Record) *int64 { return &r.ConsumedEnergy }),
		// IO.
		dictCol("WorkDir", func(r *slurm.Record) *string { return &r.WorkDir }),
		intCol("AveDiskRead", func(r *slurm.Record) *int64 { return &r.AveDiskRead }),
		intCol("AveDiskWrite", func(r *slurm.Record) *int64 { return &r.AveDiskWrite }),
		intCol("MaxDiskRead", func(r *slurm.Record) *int64 { return &r.MaxDiskRead }),
		intCol("MaxDiskWrite", func(r *slurm.Record) *int64 { return &r.MaxDiskWrite }),
		// Job state.
		stateCol(),
		exitCol(),
		dictCol("DerivedExitCode", func(r *slurm.Record) *string { return &r.DerivedExitCode }),
		dictCol("Reason", func(r *slurm.Record) *string { return &r.Reason }),
		durCol("Suspended", func(r *slurm.Record) *time.Duration { return &r.Suspended }),
		intCol("Restarts", func(r *slurm.Record) *int64 { return &r.Restarts }),
		dictCol("Constraints", func(r *slurm.Record) *string { return &r.Constraints }),
		// Scheduling metadata.
		intCol("Priority", func(r *slurm.Record) *int64 { return &r.Priority }),
		timeCol("Eligible", func(r *slurm.Record) *time.Time { return &r.Eligible }),
		dictCol("QOS", func(r *slurm.Record) *string { return &r.QOS }),
		dictCol("QOSReq", func(r *slurm.Record) *string { return &r.QOSReq }),
		flagsCol(),
		tresCol("TRESUsageInAve", func(r *slurm.Record) *slurm.TRES { return &r.TRESUsageInAve }),
		tresCol("ReqTRES", func(r *slurm.Record) *slurm.TRES { return &r.TRESReq }),
		// Special indicators.
		dictCol("Dependency", func(r *slurm.Record) *string { return &r.Dependency }),
		intCol("ArrayJobID", func(r *slurm.Record) *int64 { return &r.ArrayJobID }),
		// Misc.
		dictCol("Comment", func(r *slurm.Record) *string { return &r.Comment }),
		dictCol("SystemComment", func(r *slurm.Record) *string { return &r.SystemComment }),
		dictCol("AdminComment", func(r *slurm.Record) *string { return &r.AdminComment }),
	}
}

// ColumnNames returns the canonical column names in pinned order.
func ColumnNames() []string {
	out := make([]string, len(columns))
	for i := range columns {
		out[i] = columns[i].name
	}
	return out
}

// ColumnsFor maps a slurm field selection to the columns that back it:
// each field's own column, with the derived Backfill field reading
// through Flags. Unknown fields are an error. The result is deduplicated
// and in pinned column order.
func ColumnsFor(fields []string) ([]string, error) {
	want := make(map[string]bool, len(fields))
	for _, f := range fields {
		name := strings.ToLower(strings.TrimSpace(f))
		if name == "backfill" {
			name = "flags"
		}
		if _, ok := columnIndex[name]; !ok {
			return nil, fmt.Errorf("colstore: no column backs field %q", f)
		}
		want[name] = true
	}
	out := make([]string, 0, len(want))
	for i := range columns {
		if want[strings.ToLower(columns[i].name)] {
			out = append(out, columns[i].name)
		}
	}
	return out, nil
}
