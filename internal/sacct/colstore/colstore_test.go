package colstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"slurmsight/internal/slurm"
)

// genRecords builds n records exercising every column, with
// nanosecond-precision timestamps (the text format truncates to seconds;
// the columnar format must not).
func genRecords(seed int64, n int, month time.Time) []slurm.Record {
	rng := rand.New(rand.NewSource(seed))
	users := []string{"alice", "bob", "carol", "dave"}
	accounts := []string{"mat187", "bio042", "phy301"}
	parts := []string{"batch", "debug", "gpu"}
	states := []slurm.State{
		slurm.StateCompleted, slurm.StateFailed, slurm.StateCancelled,
		slurm.StateTimeout, slurm.StateRunning,
	}
	recs := make([]slurm.Record, n)
	for i := range recs {
		sub := month.Add(time.Duration(rng.Int63n(int64(27 * 24 * time.Hour))))
		sub = sub.Add(time.Duration(rng.Int63n(int64(time.Second)))) // sub-second part
		start := sub.Add(time.Duration(rng.Int63n(int64(3 * time.Hour))))
		r := slurm.Record{
			ID:        slurm.NewJobID(100000 + int64(i)),
			JobName:   fmt.Sprintf("job_%d", rng.Intn(40)),
			User:      users[rng.Intn(len(users))],
			UID:       int64(1000 + rng.Intn(4)),
			Group:     "users",
			Account:   accounts[rng.Intn(len(accounts))],
			Cluster:   "frontier",
			Partition: parts[rng.Intn(len(parts))],
			Submit:    sub,
			Start:     start,
			End:       start.Add(time.Duration(rng.Int63n(int64(2 * time.Hour)))),
			Eligible:  sub,
			Elapsed:   time.Duration(rng.Int63n(int64(2 * time.Hour))),
			Timelimit: 2 * time.Hour,
			NNodes:    int64(1 + rng.Intn(128)),
			NCPUs:     int64(1 + rng.Intn(8192)),
			NTasks:    int64(1 + rng.Intn(1024)),
			ReqNodes:  int64(1 + rng.Intn(128)),
			ReqCPUs:   int64(1 + rng.Intn(8192)),
			ReqMem:    int64(rng.Intn(512)) << 30,
			State:     states[rng.Intn(len(states))],
			QOS:       "normal",
			Priority:  int64(rng.Intn(200000)),
			NodeList:  fmt.Sprintf("node[%d-%d]", i%100, i%100+3),
			WorkDir:   "/lustre/project",
			Reason:    "None",
			ExitCode:  rng.Intn(3),
			TotalCPU:  time.Duration(rng.Int63n(int64(time.Hour))),
			Restarts:  int64(rng.Intn(2)),
		}
		if rng.Intn(2) == 0 {
			r.ReqMemPerCPU = true
		}
		if rng.Intn(3) == 0 {
			r.Flags = []string{slurm.FlagBackfill}
		} else {
			r.Flags = []string{slurm.FlagMain}
		}
		if rng.Intn(2) == 0 {
			r.TRESReq = slurm.TRES{"cpu": r.NCPUs, "node": r.NNodes}
			r.TRESUsageInAve = slurm.TRES{"cpu": r.NCPUs * 9 / 10}
		}
		if rng.Intn(4) == 0 {
			r.Start, r.End = time.Time{}, time.Time{} // pending-style zero times
			r.State = slurm.StatePending
		}
		if rng.Intn(5) == 0 { // a numbered step row
			r.ID = r.ID.WithStep(int64(rng.Intn(8)))
		}
		recs[i] = r
	}
	return recs
}

func writeTemp(t *testing.T, shards []ShardInput) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.colstore")
	if err := WriteFile(path, shards); err != nil {
		t.Fatal(err)
	}
	return path
}

func monthStart(y int, m time.Month) time.Time {
	return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
}

// encodeLines renders records through the curated text encoding, the
// comparison baseline shared with the pipe-text store.
func encodeLines(t *testing.T, recs []slurm.Record) []string {
	t.Helper()
	fields := slurm.SelectedNames()
	out := make([]string, len(recs))
	for i := range recs {
		line, err := slurm.EncodeRecord(&recs[i], fields)
		if err != nil {
			t.Fatalf("encode record %d: %v", i, err)
		}
		out[i] = line
	}
	return out
}

func TestRoundTripAllColumns(t *testing.T) {
	jan := genRecords(1, 400, monthStart(2024, time.January))
	feb := genRecords(2, 250, monthStart(2024, time.February))
	path := writeTemp(t, []ShardInput{
		{Year: 2024, Mon: time.January, Records: jan},
		{Year: 2024, Mon: time.February, Records: feb},
	})
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if len(f.Shards()) != 2 {
		t.Fatalf("shards = %d, want 2", len(f.Shards()))
	}
	for si, want := range [][]slurm.Record{jan, feb} {
		sh := f.Shards()[si]
		if sh.Rows() != len(want) {
			t.Fatalf("shard %d rows = %d, want %d", si, sh.Rows(), len(want))
		}
		got, err := sh.DecodeAll()
		if err != nil {
			t.Fatal(err)
		}
		wantLines, gotLines := encodeLines(t, want), encodeLines(t, got)
		for i := range wantLines {
			if wantLines[i] != gotLines[i] {
				t.Fatalf("shard %d row %d text mismatch:\n got %s\nwant %s",
					si, i, gotLines[i], wantLines[i])
			}
		}
		// Text encoding truncates timestamps to seconds; verify the
		// columnar store kept full nanosecond precision.
		for i := range want {
			if !got[i].Submit.Equal(want[i].Submit) || !got[i].Start.Equal(want[i].Start) ||
				!got[i].End.Equal(want[i].End) || !got[i].Eligible.Equal(want[i].Eligible) {
				t.Fatalf("shard %d row %d lost time precision: %v vs %v",
					si, i, got[i].Submit, want[i].Submit)
			}
		}
	}
}

func TestFooterMetadata(t *testing.T) {
	recs := genRecords(3, 100, monthStart(2025, time.March))
	path := writeTemp(t, []ShardInput{{Year: 2025, Mon: time.March, Records: recs}})
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sh := f.Shards()[0]
	if sh.Year() != 2025 || sh.Mon() != time.March {
		t.Errorf("month = %d-%d", sh.Year(), sh.Mon())
	}
	if sh.Sorted() {
		t.Error("random records reported sorted")
	}
	min, max, ok := sh.SubmitRange()
	if !ok {
		t.Fatal("SubmitRange not ok")
	}
	for i := range recs {
		if recs[i].Submit.Before(min) || recs[i].Submit.After(max) {
			t.Fatalf("row %d submit %v outside footer range [%v, %v]", i, recs[i].Submit, min, max)
		}
	}
	if got := len(sh.ColumnNames()); got != len(columns) {
		t.Errorf("columns = %d, want %d", got, len(columns))
	}
}

func TestSortedFlagRecorded(t *testing.T) {
	recs := genRecords(4, 64, monthStart(2024, time.May))
	// Sort into emission order so the writer records sorted=true.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recordCompare(&recs[j], &recs[j-1]) < 0; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	path := writeTemp(t, []ShardInput{{Year: 2024, Mon: time.May, Records: recs}})
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Shards()[0].Sorted() {
		t.Error("sorted shard not flagged sorted in footer")
	}
}

func TestEmptyShardAndEmptyFile(t *testing.T) {
	path := writeTemp(t, []ShardInput{{Year: 2024, Mon: time.June}})
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sh := f.Shards()[0]
	if sh.Rows() != 0 {
		t.Errorf("rows = %d", sh.Rows())
	}
	if _, _, ok := sh.SubmitRange(); ok {
		t.Error("empty shard claims a submit range")
	}
	recs, err := sh.DecodeAll()
	if err != nil || len(recs) != 0 {
		t.Errorf("decode empty = %d recs, %v", len(recs), err)
	}

	empty := writeTemp(t, nil)
	g, err := Open(empty)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if len(g.Shards()) != 0 {
		t.Errorf("empty file has %d shards", len(g.Shards()))
	}
}

func TestColumnProjectionReadsOnlySelectedBytes(t *testing.T) {
	recs := genRecords(5, 300, monthStart(2024, time.July))
	path := writeTemp(t, []ShardInput{{Year: 2024, Mon: time.July, Records: recs}})
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sh := f.Shards()[0]
	before := f.Stats()

	got, err := sh.DecodeColumns([]string{"User", "State"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].User != recs[i].User || got[i].State != recs[i].State {
			t.Fatalf("row %d projection mismatch", i)
		}
		if got[i].NCPUs != 0 || !got[i].Submit.IsZero() {
			t.Fatalf("row %d has unprojected fields populated", i)
		}
	}
	after := f.Stats()
	if n := after.ColumnsRead - before.ColumnsRead; n != 2 {
		t.Errorf("ColumnsRead delta = %d, want 2", n)
	}
	wantBytes := sh.ColumnBytes("User") + sh.ColumnBytes("State")
	if n := after.BytesRead - before.BytesRead; n != wantBytes {
		t.Errorf("BytesRead delta = %d, want %d", n, wantBytes)
	}
	if st, _ := os.Stat(path); after.BytesRead >= st.Size() {
		t.Errorf("projected read touched %d of %d file bytes", after.BytesRead, st.Size())
	}
	if after.RowsDecoded-before.RowsDecoded != int64(len(recs)) {
		t.Errorf("RowsDecoded delta = %d", after.RowsDecoded-before.RowsDecoded)
	}
}

func TestColumnsFor(t *testing.T) {
	cols, err := ColumnsFor([]string{"User", "jobid", " State "})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 || cols[0] != "JobID" { // pinned order: JobID first
		t.Errorf("cols = %v", cols)
	}
	cols, err = ColumnsFor([]string{"Backfill"})
	if err != nil || len(cols) != 1 || cols[0] != "Flags" {
		t.Errorf("Backfill → %v, %v", cols, err)
	}
	if _, err := ColumnsFor([]string{"NoSuchField"}); err == nil {
		t.Error("unknown field: want error")
	}
	// Every curated field must be backed by a column.
	if _, err := ColumnsFor(slurm.SelectedNames()); err != nil {
		t.Errorf("full selection: %v", err)
	}
}

func corruptCopy(t *testing.T, path string, mutate func([]byte)) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutate(data)
	out := filepath.Join(t.TempDir(), "corrupt.colstore")
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestOpenRejectsDamage(t *testing.T) {
	recs := genRecords(6, 120, monthStart(2024, time.August))
	path := writeTemp(t, []ShardInput{{Year: 2024, Mon: time.August, Records: recs}})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	footOff := binary.LittleEndian.Uint64(data[len(data)-trailerLen:])

	cases := []struct {
		name   string
		mutate func([]byte)
		trunc  int // bytes to cut from the end, 0 = none
		want   error
	}{
		{name: "version bump", mutate: func(b []byte) {
			binary.LittleEndian.PutUint16(b[len(headerMagic):], Version+1)
		}, want: ErrVersion},
		{name: "footer bit flip", mutate: func(b []byte) {
			b[footOff] ^= 0xFF
		}, want: ErrCorrupt},
		{name: "trailer magic", mutate: func(b []byte) {
			b[len(b)-1] ^= 0xFF
		}, want: ErrCorrupt},
		{name: "truncated mid-footer", trunc: trailerLen + 3, want: ErrCorrupt},
		{name: "truncated to header", trunc: len(data) - headerLen, want: ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := corruptCopy(t, path, func(b []byte) {
				if tc.mutate != nil {
					tc.mutate(b)
				}
			})
			if tc.trunc > 0 {
				full, _ := os.ReadFile(p)
				if err := os.WriteFile(p, full[:len(full)-tc.trunc], 0o644); err != nil {
					t.Fatal(err)
				}
			}
			f, err := Open(p)
			if err == nil {
				f.Close()
				t.Fatalf("Open succeeded on %s", tc.name)
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
			if tc.want != ErrNotColstore && errors.Is(err, ErrNotColstore) {
				t.Errorf("%s misreported as not-colstore (would fall back to text)", tc.name)
			}
		})
	}
}

func TestNotColstoreFallbackSignal(t *testing.T) {
	p := filepath.Join(t.TempDir(), "dump.txt")
	if err := os.WriteFile(p, []byte("JobID|User|State\n1|alice|COMPLETED\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p); !errors.Is(err, ErrNotColstore) {
		t.Errorf("text file: err = %v, want ErrNotColstore", err)
	}
	if Sniff(p) {
		t.Error("Sniff claimed a text file is columnar")
	}
	recs := genRecords(7, 10, monthStart(2024, time.September))
	bin := writeTemp(t, []ShardInput{{Year: 2024, Mon: time.September, Records: recs}})
	if !Sniff(bin) {
		t.Error("Sniff missed a columnar file")
	}
}

func TestColumnChecksumCaughtOnDecode(t *testing.T) {
	recs := genRecords(8, 80, monthStart(2024, time.October))
	path := writeTemp(t, []ShardInput{{Year: 2024, Mon: time.October, Records: recs}})
	// Flip a byte inside the first column region (starts right after the
	// header): Open must succeed — regions are validated lazily — and the
	// decode must fail with ErrCorrupt.
	p := corruptCopy(t, path, func(b []byte) { b[headerLen] ^= 0xFF })
	f, err := Open(p)
	if err != nil {
		t.Fatalf("Open should defer region validation, got %v", err)
	}
	defer f.Close()
	if _, err := f.Shards()[0].DecodeAll(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("decode of flipped column = %v, want ErrCorrupt", err)
	}
	// A projection that avoids the damaged column still decodes.
	if _, err := f.Shards()[0].DecodeColumns([]string{"User"}); err != nil {
		t.Errorf("undamaged column refused: %v", err)
	}
}

func TestConcurrentDecodes(t *testing.T) {
	recs := genRecords(9, 200, monthStart(2024, time.November))
	path := writeTemp(t, []ShardInput{{Year: 2024, Mon: time.November, Records: recs}})
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sh := f.Shards()[0]
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		proj := []string{"User", "Account"}
		if i%2 == 0 {
			proj = nil
		}
		go func(proj []string) {
			var err error
			if proj == nil {
				_, err = sh.DecodeAll()
			} else {
				_, err = sh.DecodeColumns(proj)
			}
			done <- err
		}(proj)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	recs := genRecords(10, 150, monthStart(2024, time.December))
	in := []ShardInput{{Year: 2024, Mon: time.December, Records: recs}}
	var a, b bytes.Buffer
	if err := Write(&a, in); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, in); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two writes of the same shards differ byte-for-byte")
	}
}
