package colstore

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"slurmsight/internal/slurm"
)

// FuzzColumnDecode feeds arbitrary bytes through every column decoder:
// whatever the input, decoding must return (possibly an error), never
// panic, and a region that decodes cleanly must consume predictably.
func FuzzColumnDecode(f *testing.F) {
	// Seed with one real region per column so the fuzzer starts from
	// structurally valid varint streams.
	recs := genRecords(99, 16, monthStart(2024, time.April))
	enc := &colEncoder{dict: map[string]uint64{}}
	for ci := range columns {
		enc.reset()
		for ri := range recs {
			columns[ci].enc(enc, &recs[ri])
		}
		f.Add(uint8(ci), enc.region(columns[ci].kind, nil))
	}
	f.Add(uint8(0), []byte{})
	f.Add(uint8(3), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	in := slurm.NewInterner()
	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		def := &columns[int(sel)%len(columns)]
		dec, err := newColDecoder(def.kind, data, in)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-corrupt decoder error: %v", err)
			}
			return
		}
		var r slurm.Record
		for rows := 0; rows < 1<<16 && dec.r.len() > 0; rows++ {
			if err := def.dec(dec, &r); err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("non-corrupt row error: %v", err)
				}
				return
			}
		}
	})
}

// FuzzFooterParse throws arbitrary bytes at the footer parser; it must
// reject or accept without panicking, and every accepted footer must
// re-encode to something parseable.
func FuzzFooterParse(f *testing.F) {
	recs := genRecords(98, 8, monthStart(2024, time.April))
	var buf bytes.Buffer
	if err := Write(&buf, []ShardInput{{Year: 2024, Mon: time.April, Records: recs}}); err != nil {
		f.Fatal(err)
	}
	data := buf.Bytes()
	footOff := int(uint64FromTrailer(data))
	f.Add(data[footOff : len(data)-trailerLen])
	f.Add([]byte{})
	f.Add([]byte{0x01})

	f.Fuzz(func(t *testing.T, footer []byte) {
		metas, err := parseFooter(footer, 1<<40)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-corrupt footer error: %v", err)
			}
			return
		}
		re := appendFooter(nil, metas)
		if _, err := parseFooter(re, 1<<40); err != nil {
			t.Fatalf("re-encoded footer does not parse: %v", err)
		}
	})
}

func uint64FromTrailer(data []byte) uint64 {
	var u uint64
	for i := 7; i >= 0; i-- {
		u = u<<8 | uint64(data[len(data)-trailerLen+i])
	}
	return u
}
