//go:build linux

package colstore

import (
	"os"
	"syscall"
)

// mapFile maps path read-only. Empty files and mmap failures fall back
// to a heap read so Open works on any filesystem; mapped reports which
// path was taken so Close knows whether to munmap.
func mapFile(path string) (data []byte, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size == 0 {
		return nil, false, nil
	}
	if int64(int(size)) != size {
		return nil, false, syscall.EFBIG
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// tmpfs edge cases, FUSE mounts, … — fall back to a plain read.
		data, err = os.ReadFile(path)
		return data, false, err
	}
	return data, true, nil
}

// unmapFile releases a mapping produced by mapFile.
func unmapFile(data []byte) error { return syscall.Munmap(data) }
