package sacct

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"slurmsight/internal/obs"
	"slurmsight/internal/sacct/colstore"
	"slurmsight/internal/slurm"
)

// Query selects accounting rows the way the workflow's sacct invocation
// does: a field list, a submit-time window, and optional filters.
type Query struct {
	// Fields is the output column selection; empty means the full curated
	// selection.
	Fields []string

	// Start (inclusive) and End (exclusive) bound the submission time.
	// Zero values leave that side unbounded.
	Start, End time.Time

	// IncludeSteps keeps step records; when false only job-level rows are
	// returned (sacct -X).
	IncludeSteps bool

	// Optional filters; empty matches everything.
	User      string
	Account   string
	Partition string
	State     string // canonical state spelling
}

// validate resolves the field list and state filter.
func (q *Query) validate() ([]string, slurm.State, bool, error) {
	fields := q.Fields
	if len(fields) == 0 {
		fields = slurm.SelectedNames()
	}
	for _, f := range fields {
		if _, ok := slurm.FieldByName(f); !ok {
			return nil, 0, false, fmt.Errorf("sacct: unknown field %q", f)
		}
	}
	if !q.Start.IsZero() && !q.End.IsZero() && !q.Start.Before(q.End) {
		return nil, 0, false, fmt.Errorf("sacct: query window is empty")
	}
	var st slurm.State
	filterState := false
	if q.State != "" {
		parsed, err := slurm.ParseState(q.State)
		if err != nil {
			return nil, 0, false, err
		}
		st, filterState = parsed, true
	}
	return fields, st, filterState, nil
}

func (q *Query) matches(r *slurm.Record, st slurm.State, filterState bool) bool {
	if !q.IncludeSteps && r.IsStep() {
		return false
	}
	if !q.Start.IsZero() && r.Submit.Before(q.Start) {
		return false
	}
	if !q.End.IsZero() && !r.Submit.Before(q.End) {
		return false
	}
	if q.User != "" && r.User != q.User {
		return false
	}
	if q.Account != "" && r.Account != q.Account {
		return false
	}
	if q.Partition != "" && r.Partition != q.Partition {
		return false
	}
	if filterState && r.State != st {
		return false
	}
	return true
}

// monthsIn returns the store shards overlapping the query window.
func (s *Store) monthsIn(q *Query) []Month {
	var out []Month
	for _, m := range s.Months() {
		if !q.Start.IsZero() && !m.Next().Start().After(q.Start) {
			continue // shard ends at or before the window start
		}
		if !q.End.IsZero() && !m.Start().Before(q.End) {
			continue // shard begins at or after the window end
		}
		out = append(out, m)
	}
	return out
}

// shardOverlaps reports whether a shard's actual submit extent — not
// its calendar month — intersects the query window. Lazy shards answer
// from their footer min/max without decoding a single column, so a
// window that misses every shard's data costs O(months), never a
// materialisation. An unknown extent errs toward scanning.
func (s *Store) shardOverlaps(m Month, q *Query) bool {
	if q.Start.IsZero() && q.End.IsZero() {
		return true
	}
	s.mu.RLock()
	rg, ok := s.ranges[m]
	if !ok {
		if lz := s.lazy[m]; lz != nil {
			min, max, hasRows := lz.SubmitRange()
			if !hasRows {
				s.mu.RUnlock()
				return false // footer says the shard is empty
			}
			rg, ok = shardRange{min: min.UnixNano(), max: max.UnixNano()}, true
		}
	}
	s.mu.RUnlock()
	if !ok {
		return true
	}
	if !q.Start.IsZero() && q.Start.UnixNano() > rg.max {
		return false // window opens after the last submit
	}
	if !q.End.IsZero() && q.End.UnixNano() <= rg.min {
		return false // window closes at or before the first submit
	}
	return true
}

// window narrows a shard to the query's submit-time bounds. Sorted
// shards (the steady state after Finalize) are binary-searched; a shard
// still awaiting Finalize falls back to its full extent, since matches
// re-checks the bounds per record either way.
func (s *Store) window(shard []slurm.Record, sorted bool, q *Query) (lo, hi int) {
	lo, hi = 0, len(shard)
	if !sorted {
		return lo, hi
	}
	if !q.Start.IsZero() {
		lo = sort.Search(len(shard), func(i int) bool {
			return !shard[i].Submit.Before(q.Start)
		})
	}
	if !q.End.IsZero() {
		hi = lo + sort.Search(len(shard)-lo, func(i int) bool {
			return !shard[lo+i].Submit.Before(q.End)
		})
	}
	return lo, hi
}

// Scan streams matching records in emission order without copying them:
// yielded pointers alias store-owned shard storage, so consumers that
// retain a record must copy it and must not mutate through the pointer.
// On a binary-backed store a full Scan materialises each touched shard
// once and caches it. An invalid query yields a single terminal error
// (including a decode error from a corrupt binary shard). A Scan
// concurrent with Add/Finalize is safe and sees a consistent
// per-shard view — each shard is either pre- or post-mutation; use
// Generation to detect that the answer may already be stale.
func (s *Store) Scan(q Query) slurm.RecordSeq {
	return s.scan(context.Background(), q, nil)
}

// ScanCtx is Scan under a request context: when ctx carries an active
// obs span, the pass reports itself as a "store-scan" child span with
// shard/row attributes, and any lazy shard decode it triggers reports
// under it — how a serving-plane request decomposes a slow scan.
func (s *Store) ScanCtx(ctx context.Context, q Query) slurm.RecordSeq {
	return s.scan(ctx, q, nil)
}

// scan is Scan with an optional column projection: when proj is
// non-nil, lazy binary shards decode only those columns (transiently,
// uncached) instead of materialising. Projected records have every
// unprojected field zero, so proj must cover the query's filter fields —
// projection for a Write field selection is computed by Query.columns.
//
// When the store's decode pool allows more than one worker and several
// lazy shards are in play, shard decodes run concurrently: a full scan
// parallel-materialises the overlapping lazy months up front, and a
// projected scan decodes shards up to a pool's width ahead of the
// consumer. Both stream months in order, so the yielded sequence is
// identical to the sequential path's at every worker count — including
// where a corrupt shard's error surfaces.
func (s *Store) scan(ctx context.Context, q Query, proj []string) slurm.RecordSeq {
	return func(yield func(*slurm.Record, error) bool) {
		sp := obs.SpanFromContext(ctx).Child("store-scan")
		var shards, rows int64
		if sp != nil {
			ctx = obs.ContextWithSpan(ctx, sp)
			defer func() {
				sp.SetAttrInt("shards", shards)
				sp.SetAttrInt("rows", rows)
				sp.End()
			}()
		}
		_, st, filterState, err := q.validate()
		if err != nil {
			yield(nil, err)
			return
		}
		var months []Month
		for _, m := range s.monthsIn(&q) {
			if s.shardOverlaps(m, &q) {
				months = append(months, m)
			}
		}
		// stop distinguishes an early consumer stop from shard
		// exhaustion across both emit paths.
		stop := false
		emit := func(shard []slurm.Record, sorted bool) bool {
			shards++
			lo, hi := s.window(shard, sorted, &q)
			for i := lo; i < hi; i++ {
				if !q.matches(&shard[i], st, filterState) {
					continue
				}
				rows++
				if !yield(&shard[i], nil) {
					stop = true
					return false
				}
			}
			return true
		}
		if workers := s.DecodeWorkers(); workers > 1 && len(months) > 1 && s.hasLazy() {
			if proj == nil {
				// Parallel-materialise the lazy overlapping months up
				// front. A decode error is deliberately dropped here:
				// the failing shard stays lazy, and the in-order loop
				// below re-surfaces the error at exactly the shard the
				// sequential path would have.
				_ = s.warmMonths(ctx, s.lazyAmong(months))
			} else {
				// Ordered prefetch: transient projected decodes run up
				// to a pool's width ahead of the consumer.
				s.prefetchViews(ctx, months, proj, workers, func(v shardViewResult) bool {
					if v.err != nil {
						sp.SetAttr("error", v.err.Error())
						yield(nil, v.err)
						stop = true
						return false
					}
					return emit(v.recs, v.sorted)
				})
				return
			}
		}
		for _, m := range months {
			if stop {
				return
			}
			shard, sorted, err := s.shardView(ctx, m, proj)
			if err != nil {
				sp.SetAttr("error", err.Error())
				yield(nil, err)
				return
			}
			if !emit(shard, sorted) {
				return
			}
		}
	}
}

// lazyAmong filters months down to those still lazy on disk.
func (s *Store) lazyAmong(months []Month) []Month {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Month, 0, len(months))
	for _, m := range months {
		if _, ok := s.lazy[m]; ok {
			out = append(out, m)
		}
	}
	return out
}

// Select returns matching records (copies) in shard order. It is a
// collect-wrapper over Scan for callers that need an owned slice.
func (s *Store) Select(q Query) ([]slurm.Record, error) {
	var out []slurm.Record
	for r, err := range s.Scan(q) {
		if err != nil {
			return nil, err
		}
		out = append(out, *r)
	}
	return out, nil
}

// columns maps the resolved field selection plus every field the query
// filters or windows on to the colstore columns a projected scan must
// decode. A nil result means "no useful projection" (full selection).
func (q *Query) columns(fields []string) []string {
	if len(q.Fields) == 0 {
		return nil // full curated selection — every column is needed
	}
	need := make([]string, 0, len(fields)+6)
	need = append(need, fields...)
	if !q.IncludeSteps {
		need = append(need, "JobID") // step detection
	}
	if !q.Start.IsZero() || !q.End.IsZero() {
		need = append(need, "Submit") // window checks + binary search
	}
	if q.User != "" {
		need = append(need, "User")
	}
	if q.Account != "" {
		need = append(need, "Account")
	}
	if q.Partition != "" {
		need = append(need, "Partition")
	}
	if q.State != "" {
		need = append(need, "State")
	}
	cols, err := colstore.ColumnsFor(need)
	if err != nil {
		return nil // unknown field: let validate report it on the scan
	}
	return cols
}

// Write emits matching rows as pipe-separated text with a header, the
// format the workflow's "Obtain data" stage stores on disk. On a
// binary-backed store with an explicit field selection, only the
// selected (plus filtered) columns are decoded.
func (s *Store) Write(w io.Writer, q Query) (int, error) {
	return s.WriteNCtx(context.Background(), w, q, 0)
}

// WriteN is Write with a row bound: limit > 0 stops the scan after that
// many matching rows (the header still always renders), so a serving
// layer can cap response sizes without scanning past the cut. limit ≤ 0
// writes everything.
func (s *Store) WriteN(w io.Writer, q Query, limit int) (int, error) {
	return s.WriteNCtx(context.Background(), w, q, limit)
}

// WriteNCtx is WriteN under a request context, reporting the underlying
// scan (and any shard decode it triggers) as spans per ScanCtx.
func (s *Store) WriteNCtx(ctx context.Context, w io.Writer, q Query, limit int) (int, error) {
	fields, _, _, err := q.validate()
	if err != nil {
		return 0, err
	}
	var proj []string
	if s.hasLazy() {
		proj = q.columns(fields)
	}
	var sb strings.Builder
	sb.WriteString(slurm.Header(fields))
	sb.WriteByte('\n')
	n := 0
	for r, err := range s.scan(ctx, q, proj) {
		if err != nil {
			return n, err
		}
		line, err := slurm.EncodeRecord(r, fields)
		if err != nil {
			return n, err
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
		n++
		if sb.Len() > 1<<16 {
			if _, err := io.WriteString(w, sb.String()); err != nil {
				return n, err
			}
			sb.Reset()
		}
		if limit > 0 && n >= limit {
			break
		}
	}
	_, err = io.WriteString(w, sb.String())
	return n, err
}
