package sacct

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Granularity selects how the Obtain-data stage shards its retrievals,
// matching the workflow's date_spec argument.
type Granularity int

const (
	// Monthly fetches one file per calendar month.
	Monthly Granularity = iota
	// Yearly fetches one file per calendar year.
	Yearly
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	if g == Yearly {
		return "yearly"
	}
	return "monthly"
}

// ParseGranularity accepts the workflow's date_spec spellings.
func ParseGranularity(s string) (Granularity, error) {
	switch s {
	case "months", "monthly", "month":
		return Monthly, nil
	case "years", "yearly", "year":
		return Yearly, nil
	}
	return 0, fmt.Errorf("sacct: unknown granularity %q", s)
}

// FetchSpec parameterizes one Obtain-data run.
type FetchSpec struct {
	Granularity Granularity
	Start, End  time.Time // half-open window
	Fields      []string  // empty = full curated selection
	UseCache    bool      // reuse files already present in CacheDir

	// CorruptionRate injects malformed rows at the given probability,
	// emulating the hardware-error artifacts the paper reports in
	// <0.002% of Frontier's records; the curation stage must drop them.
	CorruptionRate float64
	// CorruptionSeed makes injection deterministic.
	CorruptionSeed int64
}

// Fetcher executes the Obtain-data stage: for each period in the window
// it queries the store and writes a pipe-separated text file into
// CacheDir, skipping periods whose file already exists when UseCache is
// set. Periods are fetched concurrently by Workers goroutines — the Go
// replacement for the paper's GNU Parallel fan-out.
type Fetcher struct {
	Store    *Store
	CacheDir string
	Workers  int
}

// FetchedFile describes one retrieved period.
type FetchedFile struct {
	Period string // "2024-03" or "2024"
	Path   string
	Rows   int  // rows written; -1 when served from cache
	Cached bool // true when the cache satisfied the period
}

// periods enumerates the period labels and their time windows.
func (s FetchSpec) periods() ([]FetchedFile, []Query, error) {
	if s.Start.IsZero() || s.End.IsZero() || !s.Start.Before(s.End) {
		return nil, nil, fmt.Errorf("sacct: fetch window is empty")
	}
	var files []FetchedFile
	var queries []Query
	switch s.Granularity {
	case Monthly:
		for m := MonthOf(s.Start); m.Start().Before(s.End); m = m.Next() {
			files = append(files, FetchedFile{Period: m.String()})
			queries = append(queries, Query{
				Fields: s.Fields, Start: m.Start(), End: m.Next().Start(),
				IncludeSteps: true,
			})
		}
	case Yearly:
		for y := s.Start.Year(); y <= s.End.Add(-time.Second).Year(); y++ {
			files = append(files, FetchedFile{Period: fmt.Sprintf("%04d", y)})
			queries = append(queries, Query{
				Fields:       s.Fields,
				Start:        time.Date(y, 1, 1, 0, 0, 0, 0, time.UTC),
				End:          time.Date(y+1, 1, 1, 0, 0, 0, 0, time.UTC),
				IncludeSteps: true,
			})
		}
	default:
		return nil, nil, fmt.Errorf("sacct: unknown granularity %d", s.Granularity)
	}
	return files, queries, nil
}

// Periods returns the period labels the spec will fetch, in order, with
// the file name each period lands in under a cache directory. It lets
// workflow graphs declare per-period tasks before any data moves.
func (s FetchSpec) Periods() ([]string, error) {
	files, _, err := s.periods()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(files))
	for i := range files {
		out[i] = files[i].Period
	}
	return out, nil
}

// PeriodFileName returns the cache file name for a period label.
func PeriodFileName(period string) string { return "slurm-" + period + ".txt" }

// Fetch runs the stage and returns one entry per period, in period order.
func (f *Fetcher) Fetch(ctx context.Context, spec FetchSpec) ([]FetchedFile, error) {
	if f.Store == nil {
		return nil, fmt.Errorf("sacct: fetcher has no store")
	}
	if f.CacheDir == "" {
		return nil, fmt.Errorf("sacct: fetcher has no cache directory")
	}
	if err := os.MkdirAll(f.CacheDir, 0o755); err != nil {
		return nil, err
	}
	files, queries, err := spec.periods()
	if err != nil {
		return nil, err
	}
	workers := f.Workers
	if workers <= 0 {
		workers = 4
	}

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	errs := make([]error, len(files))
	for i := range files {
		files[i].Path = filepath.Join(f.CacheDir, PeriodFileName(files[i].Period))
		if spec.UseCache {
			if _, err := os.Stat(files[i].Path); err == nil {
				files[i].Cached = true
				files[i].Rows = -1
				continue
			}
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			errs[i] = f.fetchOne(&files[i], queries[i], spec)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}

func (f *Fetcher) fetchOne(file *FetchedFile, q Query, spec FetchSpec) error {
	tmp := file.Path + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var n int
	if spec.CorruptionRate > 0 {
		var buf bytes.Buffer
		n, err = f.Store.Write(&buf, q)
		if err == nil {
			err = writeCorrupted(out, &buf, spec.CorruptionRate,
				spec.CorruptionSeed^int64(len(file.Period))^int64(file.Period[len(file.Period)-1]))
		}
	} else {
		n, err = f.Store.Write(out, q)
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sacct: fetching %s: %w", file.Period, err)
	}
	if err := os.Rename(tmp, file.Path); err != nil {
		return err
	}
	file.Rows = n
	return nil
}

// writeCorrupted copies lines from buf to w, truncating a random subset —
// the shape of the malformed rows a flaky accounting host produces.
func writeCorrupted(w io.Writer, buf *bytes.Buffer, rate float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	sc := bufio.NewScanner(buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	bw := bufio.NewWriter(w)
	first := true
	for sc.Scan() {
		line := sc.Text()
		if !first && rng.Float64() < rate && len(line) > 4 {
			line = line[:len(line)/2] // chop mid-record
		}
		first = false
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return bw.Flush()
}
