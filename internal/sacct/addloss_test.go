package sacct

import (
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"slurmsight/internal/slurm"
)

// corruptFirstColumn flips one byte inside the first shard's first
// column region (columns start right after the 12-byte header), leaving
// the footer CRC intact: the file opens fine and the damage only
// surfaces when that shard's columns are decoded.
func corruptFirstColumn(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestAddIntoCorruptLazyShardSurfacesError pins the Add data-loss fix:
// appending into a month whose lazy shard fails to materialise must
// return the error, leave the store's row count untouched (the on-disk
// rows stay visible, the new record is not half-inserted), and leave
// the generation alone. Before the fix Add swallowed the materialise
// error and appended anyway, silently dropping every on-disk row in
// that month.
func TestAddIntoCorruptLazyShardSurfacesError(t *testing.T) {
	st, _ := buildStore(t, 40)
	path := dumpBinary(t, st)
	corruptFirstColumn(t, path)

	bin, err := OpenBinary(path)
	if err != nil {
		t.Fatalf("open with intact footer: %v", err)
	}
	defer bin.Close()

	months := bin.Months()
	if len(months) < 2 {
		t.Fatalf("want >= 2 months, got %v", months)
	}
	wantLen := bin.Len()
	wantGen := bin.Generation()

	extra := slurm.Record{
		ID:     slurm.NewJobID(9_999_999),
		User:   "late",
		Submit: months[0].Start().Add(12 * time.Hour),
		State:  slurm.StateCompleted,
		NNodes: 1,
	}
	if err := bin.Add(extra); err == nil {
		t.Fatal("Add into a corrupt lazy shard returned nil — the data-loss bug is back")
	}
	if got := bin.Len(); got != wantLen {
		t.Fatalf("Len after failed Add = %d, want %d (rows vanished)", got, wantLen)
	}
	if got := bin.Generation(); got != wantGen {
		t.Fatalf("generation after failed Add = %d, want %d (nothing landed)", got, wantGen)
	}
	// The corruption still surfaces on a scan of that month...
	if _, err := bin.Select(Query{End: months[0].Next().Start()}); err == nil {
		t.Fatal("scan of the corrupt month succeeded")
	}
	// ...while untouched months stay readable.
	rows, err := bin.Select(Query{Start: months[1].Start(), IncludeSteps: true})
	if err != nil {
		t.Fatalf("scan of a healthy month: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("healthy month returned no rows")
	}
}

// TestAddPartialBatchBumpsGeneration pins the partial-application
// contract: when a batch fails mid-way, records already inserted stay
// inserted and the generation moves so cached responses cannot claim
// the pre-batch state is current.
func TestAddPartialBatchBumpsGeneration(t *testing.T) {
	st, _ := buildStore(t, 40)
	path := dumpBinary(t, st)
	corruptFirstColumn(t, path)

	bin, err := OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	months := bin.Months()
	gen0 := bin.Generation()

	good := slurm.Record{
		ID:     slurm.NewJobID(9_000_001),
		User:   "ok",
		Submit: time.Date(2031, 1, 1, 0, 0, 0, 0, time.UTC), // fresh month
		State:  slurm.StateCompleted,
	}
	bad := slurm.Record{
		ID:     slurm.NewJobID(9_000_002),
		User:   "doomed",
		Submit: months[0].Start().Add(time.Hour), // corrupt month
		State:  slurm.StateCompleted,
	}
	if err := bin.Add(good, bad); err == nil {
		t.Fatal("batch touching the corrupt shard returned nil")
	}
	if got := bin.Generation(); got <= gen0 {
		t.Fatalf("generation = %d after a partially applied batch, want > %d", got, gen0)
	}
	rows, err := bin.Select(Query{Start: good.Submit.Add(-time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].User != "ok" {
		t.Fatalf("pre-failure record not visible: %v", rows)
	}
}

// TestQueryWindowOutsideDataSkipsShards pins the extent short-circuit:
// a window that overlaps a shard's calendar month but misses its actual
// submit range must answer without decoding a single column.
func TestQueryWindowOutsideDataSkipsShards(t *testing.T) {
	st, _ := buildStore(t, 40) // submissions span 2024-01-10 .. 2024-02-19
	bin, err := OpenBinary(dumpBinary(t, st))
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()

	windows := []Query{
		{Start: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC), End: time.Date(2024, 1, 5, 0, 0, 0, 0, time.UTC)},   // before the data, same month
		{Start: time.Date(2024, 2, 25, 0, 0, 0, 0, time.UTC), End: time.Date(2024, 2, 27, 0, 0, 0, 0, time.UTC)}, // after the data, same month
	}
	for i, q := range windows {
		rows, err := bin.Select(q)
		if err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		if len(rows) != 0 {
			t.Fatalf("window %d: got %d rows, want 0", i, len(rows))
		}
	}
	stats, ok := bin.ColstoreStats()
	if !ok {
		t.Fatal("no colstore stats on a binary store")
	}
	if stats.ShardsOpened != 0 {
		t.Fatalf("empty-window queries decoded %d shards, want 0", stats.ShardsOpened)
	}
	// Control: a window that does touch data decodes something.
	if _, err := bin.Select(Query{Start: base, End: base.AddDate(0, 0, 2)}); err != nil {
		t.Fatal(err)
	}
	stats, _ = bin.ColstoreStats()
	if stats.ShardsOpened == 0 {
		t.Fatal("control query decoded nothing")
	}
}

// TestConcurrentAddScanRace hammers the live-store contract under the
// race detector: one appender (Add + periodic Finalize) against
// concurrent projected scans, Len, Months, and Generation reads over a
// mixed materialised/lazy store.
func TestConcurrentAddScanRace(t *testing.T) {
	st, _ := buildStore(t, 40)
	bin, err := OpenBinary(dumpBinary(t, st))
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	months := bin.Months()
	// Materialise the first month so lazy and in-memory shards coexist.
	if _, err := bin.Select(Query{End: months[0].Next().Start()}); err != nil {
		t.Fatal(err)
	}

	const appends = 300
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		sub := time.Date(2030, 6, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; i < appends; i++ {
			r := slurm.Record{
				ID:     slurm.NewJobID(int64(5_000_000 + i)),
				User:   "raceuser",
				Submit: sub,
				State:  slurm.StateCompleted,
				NNodes: 1,
			}
			sub = sub.Add(time.Minute)
			if err := bin.Add(r); err != nil {
				t.Errorf("Add: %v", err)
				return
			}
			if i%16 == 0 {
				bin.Finalize()
			}
		}
	}()

	queries := []Query{
		{Fields: []string{"JobID", "User"}},
		{Fields: []string{"JobID", "Submit"}, Start: base, End: base.AddDate(0, 0, 20)},
		{Fields: []string{"JobID"}, User: "raceuser", Start: time.Date(2030, 6, 1, 0, 0, 0, 0, time.UTC)},
		{IncludeSteps: true, Fields: []string{"JobID", "State"}},
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := bin.WriteN(io.Discard, queries[(w+i)%len(queries)], 64); err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
				_ = bin.Len()
				_ = bin.Months()
				_ = bin.Generation()
			}
		}(w)
	}
	wg.Wait()

	bin.Finalize()
	rows, err := bin.Select(Query{User: "raceuser", Start: time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != appends {
		t.Fatalf("after the dust settles: %d appended rows visible, want %d", len(rows), appends)
	}
}
