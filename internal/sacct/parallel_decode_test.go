package sacct

import (
	"bytes"
	"testing"
)

// parityQueries is the worker-parity workload: full scans, projected
// scans (the prefetch pipeline), range restrictions, and filters.
func parityQueries() []Query {
	return []Query{
		{},                   // jobs only, full materialise path
		{IncludeSteps: true}, // everything
		{Fields: []string{"JobID", "User", "State"}},                            // projected prefetch
		{Fields: []string{"JobID", "Submit", "Elapsed"}, IncludeSteps: true},    // projected, steps
		{Start: base.AddDate(0, 0, 20), End: base.AddDate(0, 0, 80)},            // month subset
		{State: "COMPLETED", Fields: []string{"User", "NNodes", "Elapsed"}},     // filter + projection
		{User: "u03", Start: base.AddDate(0, 0, 5), End: base.AddDate(0, 2, 0)}, // narrow
	}
}

// openBinaryWorkers reopens the dump with a given decode width.
func openBinaryWorkers(t *testing.T, path string, workers int) *Store {
	t.Helper()
	bin, err := OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bin.Close() })
	bin.SetDecodeWorkers(workers)
	return bin
}

// TestParallelScanParity pins the tentpole contract: at every decode
// width, every query over a lazy binary store yields byte-identical
// output to the in-memory text store — parallel decode must be an
// invisible optimisation. Each width gets a fresh store so its scans
// hit the lazy (parallel) path, not shards warmed by a previous width.
func TestParallelScanParity(t *testing.T) {
	st, _ := buildStore(t, 100) // 4 month shards
	path := dumpBinary(t, st)
	for _, workers := range []int{1, 2, 4, 8} {
		bin := openBinaryWorkers(t, path, workers)
		for i, q := range parityQueries() {
			want := queryText(t, st, q)
			if got := queryText(t, bin, q); got != want {
				t.Fatalf("workers=%d query %d: output diverges from text store", workers, i)
			}
		}
	}
}

// TestParallelWarmParity pins that a parallel Warm installs exactly the
// shards a sequential Warm would: afterwards every query is served warm
// and still matches the text store byte for byte.
func TestParallelWarmParity(t *testing.T) {
	st, _ := buildStore(t, 100)
	path := dumpBinary(t, st)
	for _, workers := range []int{1, 2, 4, 8} {
		bin := openBinaryWorkers(t, path, workers)
		if err := bin.Warm(); err != nil {
			t.Fatalf("workers=%d: Warm: %v", workers, err)
		}
		if bin.hasLazy() {
			t.Fatalf("workers=%d: lazy shards remain after Warm", workers)
		}
		for i, q := range parityQueries() {
			if got, want := queryText(t, bin, q), queryText(t, st, q); got != want {
				t.Fatalf("workers=%d query %d: warm output diverges", workers, i)
			}
		}
	}
}

// TestParallelWriteNEarlyStop exercises the prefetch pipeline's early
// shutdown: a consumer that stops after a handful of rows must see the
// same prefix the sequential path produces, with no goroutine leak or
// deadlock (the race detector and test timeout police the rest).
func TestParallelWriteNEarlyStop(t *testing.T) {
	st, _ := buildStore(t, 100)
	path := dumpBinary(t, st)
	q := Query{Fields: []string{"JobID", "User", "State"}, IncludeSteps: true}
	for _, limit := range []int{1, 7, 100} {
		var want bytes.Buffer
		seq := openBinaryWorkers(t, path, 1)
		if _, err := seq.WriteN(&want, q, limit); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			bin := openBinaryWorkers(t, path, workers)
			var got bytes.Buffer
			n, err := bin.WriteN(&got, q, limit)
			if err != nil {
				t.Fatalf("workers=%d limit=%d: %v", workers, limit, err)
			}
			if n != limit {
				t.Fatalf("workers=%d limit=%d: wrote %d rows", workers, limit, n)
			}
			if got.String() != want.String() {
				t.Fatalf("workers=%d limit=%d: prefix diverges from sequential", workers, limit)
			}
		}
	}
}

// TestParallelCorruptShardErrorParity pins the error contract: a shard
// that fails to decode surfaces the same error at the same point in the
// stream regardless of decode width, for both the full-materialise and
// the projected prefetch path, and healthy months stay readable.
func TestParallelCorruptShardErrorParity(t *testing.T) {
	st, _ := buildStore(t, 100)
	path := dumpBinary(t, st)
	corruptFirstColumn(t, path)

	queries := []Query{
		{IncludeSteps: true}, // full materialise
		{Fields: []string{"JobID", "User"}, IncludeSteps: true}, // projected prefetch
	}
	for qi, q := range queries {
		var wantErr string
		var wantOut string
		{
			seq := openBinaryWorkers(t, path, 1)
			var buf bytes.Buffer
			_, err := seq.Write(&buf, q)
			if err == nil {
				t.Fatalf("query %d: sequential scan of corrupt shard succeeded", qi)
			}
			wantErr, wantOut = err.Error(), buf.String()
		}
		for _, workers := range []int{2, 4, 8} {
			bin := openBinaryWorkers(t, path, workers)
			var buf bytes.Buffer
			_, err := bin.Write(&buf, q)
			if err == nil {
				t.Fatalf("workers=%d query %d: scan of corrupt shard succeeded", workers, qi)
			}
			if err.Error() != wantErr {
				t.Fatalf("workers=%d query %d: error %q, want %q", workers, qi, err, wantErr)
			}
			if buf.String() != wantOut {
				t.Fatalf("workers=%d query %d: pre-error output diverges from sequential", workers, qi)
			}

			// Healthy months after the corrupt one stay readable.
			months := bin.Months()
			last := months[len(months)-1]
			healthy := Query{Start: last.Start(), End: last.Next().Start()}
			want := queryText(t, st, healthy)
			if got := queryText(t, bin, healthy); got != want {
				t.Fatalf("workers=%d: healthy month diverges after corrupt-shard error", workers)
			}
		}
	}
}

// TestDecodeWorkersResolution pins the knob semantics: 0 means auto
// (GOMAXPROCS), negatives clamp to 1.
func TestDecodeWorkersResolution(t *testing.T) {
	var s Store
	if got := s.DecodeWorkers(); got < 1 {
		t.Fatalf("default DecodeWorkers = %d, want >= 1", got)
	}
	s.SetDecodeWorkers(-3)
	if got := s.DecodeWorkers(); got != 1 {
		t.Fatalf("DecodeWorkers(-3) = %d, want 1", got)
	}
	s.SetDecodeWorkers(6)
	if got := s.DecodeWorkers(); got != 6 {
		t.Fatalf("DecodeWorkers(6) = %d, want 6", got)
	}
}
