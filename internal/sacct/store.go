// Package sacct is the simulated Slurm accounting database: it stores the
// job and step records produced by the scheduler simulator, serves
// sacct-style field-selectable queries as pipe-separated text, persists and
// reloads dumps, and implements the workflow's "Obtain data" stage —
// month-sharded concurrent retrieval with a cache directory, replacing the
// paper's sacct + GNU Parallel combination.
package sacct

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"slurmsight/internal/sched"
	"slurmsight/internal/slurm"
)

// Month identifies one calendar shard.
type Month struct {
	Year int
	Mon  time.Month
}

// MonthOf returns the shard a timestamp belongs to.
func MonthOf(t time.Time) Month { return Month{Year: t.Year(), Mon: t.Month()} }

// String renders "2024-03".
func (m Month) String() string { return fmt.Sprintf("%04d-%02d", m.Year, int(m.Mon)) }

// Start returns the first instant of the month (UTC).
func (m Month) Start() time.Time {
	return time.Date(m.Year, m.Mon, 1, 0, 0, 0, 0, time.UTC)
}

// Next returns the following month.
func (m Month) Next() Month {
	t := m.Start().AddDate(0, 1, 0)
	return MonthOf(t)
}

// Before orders months chronologically.
func (m Month) Before(o Month) bool {
	if m.Year != o.Year {
		return m.Year < o.Year
	}
	return m.Mon < o.Mon
}

// ParseMonth parses "2024-03".
func ParseMonth(s string) (Month, error) {
	t, err := time.Parse("2006-01", strings.TrimSpace(s))
	if err != nil {
		return Month{}, fmt.Errorf("sacct: bad month %q", s)
	}
	return MonthOf(t), nil
}

// Store is an in-memory accounting database sharded by submission month.
// It is safe for concurrent queries after ingestion is complete; Ingest
// and Add take an internal lock so loads may also be concurrent.
type Store struct {
	mu     sync.RWMutex
	shards map[Month][]slurm.Record
	sorted map[Month]bool // shard known to be in recordLess order
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{shards: map[Month][]slurm.Record{}, sorted: map[Month]bool{}}
}

// recordLess is the shard emission order: submission time, ties broken
// by sacct job-id order (steps after their job). Because the simulator
// assigns job ids in submission order, this coincides with plain job-id
// order for simulated traces while letting queries binary-search the
// submit window.
func recordLess(a, b *slurm.Record) bool {
	if !a.Submit.Equal(b.Submit) {
		return a.Submit.Before(b.Submit)
	}
	return slurm.CompareJobID(a.ID, b.ID) < 0
}

// Add inserts records, sharding by submission month.
func (s *Store) Add(records ...slurm.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range records {
		m := MonthOf(r.Submit)
		s.shards[m] = append(s.shards[m], r)
		delete(s.sorted, m)
	}
}

// Ingest loads a complete simulation result (jobs and steps).
func (s *Store) Ingest(res *sched.Result) {
	s.Add(res.Jobs...)
	s.Add(res.Steps...)
}

// Finalize puts every shard in emission order (recordLess). Call once
// after ingestion. Shards whose records already arrived in order — the
// common case when reloading a Dump — are detected with a linear
// is-sorted check and skipped instead of re-sorted.
func (s *Store) Finalize() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for m := range s.shards {
		if s.sorted[m] {
			continue
		}
		shard := s.shards[m]
		less := func(i, j int) bool { return recordLess(&shard[i], &shard[j]) }
		if !sort.SliceIsSorted(shard, less) {
			sort.SliceStable(shard, less)
		}
		s.sorted[m] = true
	}
}

// Months returns the populated shards in chronological order.
func (s *Store) Months() []Month {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Month, 0, len(s.shards))
	for m := range s.shards {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// Len returns the total record count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, shard := range s.shards {
		n += len(shard)
	}
	return n
}

// Dump writes the full store as pipe-separated text with the complete
// curated field selection, suitable for Load.
func (s *Store) Dump(w io.Writer) error {
	fields := slurm.SelectedNames()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, slurm.Header(fields)); err != nil {
		return err
	}
	for _, m := range s.Months() {
		s.mu.RLock()
		shard := s.shards[m]
		s.mu.RUnlock()
		for i := range shard {
			line, err := slurm.EncodeRecord(&shard[i], fields)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintln(bw, line); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DumpFile writes the store to a file.
func (s *Store) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Dump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a Dump back into a store. Malformed lines are returned in
// count; the paper's curation stage discards them downstream, so the store
// keeps only clean rows.
func Load(r io.Reader) (*Store, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, 0, fmt.Errorf("sacct: empty dump")
	}
	fields := strings.Split(strings.TrimSpace(sc.Text()), slurm.Separator)
	for _, f := range fields {
		if _, ok := slurm.FieldByName(f); !ok {
			return nil, 0, fmt.Errorf("sacct: dump header has unknown field %q", f)
		}
	}
	st := NewStore()
	malformed := 0
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		rec, err := slurm.DecodeRecord(line, fields)
		if err != nil {
			malformed++
			continue
		}
		st.Add(*rec)
	}
	if err := sc.Err(); err != nil {
		return nil, malformed, err
	}
	st.Finalize()
	return st, malformed, nil
}

// LoadFile reads a dump file.
func LoadFile(path string) (*Store, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return Load(f)
}
