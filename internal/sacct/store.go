// Package sacct is the simulated Slurm accounting database: it stores the
// job and step records produced by the scheduler simulator, serves
// sacct-style field-selectable queries as pipe-separated text, persists and
// reloads dumps, and implements the workflow's "Obtain data" stage —
// month-sharded concurrent retrieval with a cache directory, replacing the
// paper's sacct + GNU Parallel combination.
//
// Stores persist in two formats: the pipe-separated text dump
// (Dump/Load, the sacct-compatible interchange form) and the binary
// columnar shard store (DumpBinary/OpenBinary, see the colstore
// subpackage) whose reload is O(open + footer) and whose scans read only
// the columns a query projects.
package sacct

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slurmsight/internal/sacct/colstore"
	"slurmsight/internal/sched"
	"slurmsight/internal/slurm"
)

// Month identifies one calendar shard.
type Month struct {
	Year int
	Mon  time.Month
}

// MonthOf returns the shard a timestamp belongs to.
func MonthOf(t time.Time) Month { return Month{Year: t.Year(), Mon: t.Month()} }

// String renders "2024-03".
func (m Month) String() string { return fmt.Sprintf("%04d-%02d", m.Year, int(m.Mon)) }

// Start returns the first instant of the month (UTC).
func (m Month) Start() time.Time {
	return time.Date(m.Year, m.Mon, 1, 0, 0, 0, 0, time.UTC)
}

// Next returns the following month.
func (m Month) Next() Month {
	t := m.Start().AddDate(0, 1, 0)
	return MonthOf(t)
}

// Before orders months chronologically.
func (m Month) Before(o Month) bool { return m.Compare(o) < 0 }

// Compare orders months chronologically for the slices sort helpers.
func (m Month) Compare(o Month) int {
	if m.Year != o.Year {
		return m.Year - o.Year
	}
	return int(m.Mon) - int(o.Mon)
}

// ParseMonth parses "2024-03".
func ParseMonth(s string) (Month, error) {
	t, err := time.Parse("2006-01", strings.TrimSpace(s))
	if err != nil {
		return Month{}, fmt.Errorf("sacct: bad month %q", s)
	}
	return MonthOf(t), nil
}

// Store is an in-memory accounting database sharded by submission month.
// Queries, Add, and Finalize may run concurrently: mutators never write
// through record storage a reader could be holding (Finalize sorts into
// a fresh copy and swaps the shard pointer; Add appends past every
// captured length), so a scan started before a mutation sees a
// consistent pre-mutation view of each shard it visits.
//
// A store opened with OpenBinary starts lazy: each month shard stays on
// disk as columns until the first full scan touches it (at which point
// it materialises once and is cached), and projected queries through
// Write decode only the columns the field selection needs.
type Store struct {
	mu     sync.RWMutex
	shards map[Month][]slurm.Record
	sorted map[Month]bool       // shard known to be in recordLess order
	ranges map[Month]shardRange // actual submit extent of materialised shards

	lazy map[Month]*colstore.Shard // binary shards not yet materialised
	bin  *colstore.File            // backing columnar file; nil for text stores

	gen atomic.Uint64 // bumped on every successful logical mutation

	// decWorkers caps concurrent shard decodes (0 = GOMAXPROCS); see
	// SetDecodeWorkers in parallel.go.
	decWorkers atomic.Int32
}

// shardRange is a shard's actual submit extent in unix nanoseconds,
// inclusive on both ends.
type shardRange struct{ min, max int64 }

// extend widens the range to admit t.
func (r shardRange) extend(t time.Time) shardRange {
	ns := t.UnixNano()
	if ns < r.min {
		r.min = ns
	}
	if ns > r.max {
		r.max = ns
	}
	return r
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		shards: map[Month][]slurm.Record{},
		sorted: map[Month]bool{},
		ranges: map[Month]shardRange{},
		lazy:   map[Month]*colstore.Shard{},
	}
}

// Generation returns the store's mutation counter: it advances after
// every Add/Ingest that lands records and every Finalize that reorders a
// shard, and never otherwise. Two reads returning the same value
// bracket a window in which every query answer was stable, which is
// what makes it usable as a response-cache key.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// recordCmp is the shard emission order: submission time, ties broken
// by sacct job-id order (steps after their job). Because the simulator
// assigns job ids in submission order, this coincides with plain job-id
// order for simulated traces while letting queries binary-search the
// submit window.
func recordCmp(a, b slurm.Record) int {
	if !a.Submit.Equal(b.Submit) {
		if a.Submit.Before(b.Submit) {
			return -1
		}
		return 1
	}
	return slurm.CompareJobID(a.ID, b.ID)
}

// recordLess is recordCmp as a less-predicate, for binary searches.
func recordLess(a, b *slurm.Record) bool { return recordCmp(*a, *b) < 0 }

// Add inserts records, sharding by submission month. Adding into a
// month still lazy on disk materialises that shard first so the new
// records land behind the stored ones.
//
// A materialisation failure (a corrupt backing shard) aborts the insert
// at the failing record and returns the decode error: records earlier
// in the batch stay inserted, the failing record and everything after
// it do not, and the corrupt month keeps its on-disk rows visible to
// Months/Len and its error surfacing on every later scan — nothing is
// silently dropped on either side.
func (s *Store) Add(records ...slurm.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	added := false
	for _, r := range records {
		m := MonthOf(r.Submit)
		if _, ok := s.lazy[m]; ok {
			if err := s.materializeLocked(context.Background(), m); err != nil {
				if added {
					s.gen.Add(1)
				}
				return fmt.Errorf("sacct: add into shard %s: %w", m, err)
			}
		}
		if rg, ok := s.ranges[m]; ok {
			s.ranges[m] = rg.extend(r.Submit)
		} else {
			ns := r.Submit.UnixNano()
			s.ranges[m] = shardRange{min: ns, max: ns}
		}
		s.shards[m] = append(s.shards[m], r)
		delete(s.sorted, m)
		added = true
	}
	if added {
		s.gen.Add(1)
	}
	return nil
}

// Ingest loads a complete simulation result (jobs and steps).
func (s *Store) Ingest(res *sched.Result) error {
	if err := s.Add(res.Jobs...); err != nil {
		return err
	}
	return s.Add(res.Steps...)
}

// Finalize puts every materialised shard in emission order (recordCmp).
// Call after ingestion or a batch of Adds. Shards whose records already
// arrived in order — the common case when reloading a Dump — are
// detected with a linear is-sorted check and skipped instead of
// re-sorted. A shard that does need sorting is sorted into a fresh copy
// and swapped in, so concurrent scans holding the old slice keep a
// consistent view. Lazy binary shards are left on disk; they sort (if
// needed) when materialised.
func (s *Store) Finalize() {
	s.mu.Lock()
	defer s.mu.Unlock()
	reordered := false
	for m := range s.shards {
		if s.sorted[m] {
			continue
		}
		shard := s.shards[m]
		if !slices.IsSortedFunc(shard, recordCmp) {
			shard = slices.Clone(shard)
			slices.SortStableFunc(shard, recordCmp)
			s.shards[m] = shard
			reordered = true
		}
		s.sorted[m] = true
	}
	if reordered {
		s.gen.Add(1)
	}
}

// Months returns the populated shards in chronological order, lazy
// binary shards included.
func (s *Store) Months() []Month {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Month, 0, len(s.shards)+len(s.lazy))
	for m := range s.shards {
		out = append(out, m)
	}
	for m := range s.lazy {
		if _, ok := s.shards[m]; !ok {
			out = append(out, m)
		}
	}
	slices.SortFunc(out, Month.Compare)
	return out
}

// Len returns the total record count, counting lazy shards from their
// footers without decoding them.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, shard := range s.shards {
		n += len(shard)
	}
	for m, sh := range s.lazy {
		if _, ok := s.shards[m]; !ok {
			n += sh.Rows()
		}
	}
	return n
}

// snapshot materialises any lazy shards, then returns every populated
// month with its record slice under a single read lock — so a
// concurrent Add cannot interleave between shards mid-iteration. The
// returned slices alias store storage; callers must not mutate them.
func (s *Store) snapshot() ([]Month, [][]slurm.Record, error) {
	if err := s.materializeAll(); err != nil {
		return nil, nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	months := make([]Month, 0, len(s.shards))
	for m := range s.shards {
		months = append(months, m)
	}
	slices.SortFunc(months, Month.Compare)
	shards := make([][]slurm.Record, len(months))
	for i, m := range months {
		shards[i] = s.shards[m]
	}
	return months, shards, nil
}

// Dump writes the full store as pipe-separated text with the complete
// curated field selection, suitable for Load.
func (s *Store) Dump(w io.Writer) error {
	fields := slurm.SelectedNames()
	_, shards, err := s.snapshot()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, slurm.Header(fields)); err != nil {
		return err
	}
	for _, shard := range shards {
		for i := range shard {
			line, err := slurm.EncodeRecord(&shard[i], fields)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintln(bw, line); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DumpFile writes the store to a file.
func (s *Store) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Dump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// maxLoadLine bounds one dump row. A row past it fails the load with a
// line-numbered error rather than an opaque scanner failure.
const maxLoadLine = 8 << 20

// loadLineReader reads dump lines through a bufio.Reader with a
// growable spill, so rows longer than the read buffer still decode and
// rows past maxLoadLine fail with their line number.
type loadLineReader struct {
	r    *bufio.Reader
	long []byte
	line int // 1-based number of the line most recently returned
}

// next returns the next line with its "\n" (and any "\r" before it)
// stripped. io.EOF marks clean end of input.
func (lr *loadLineReader) next() ([]byte, error) {
	line, err := lr.r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		lr.long = append(lr.long[:0], line...)
		for err == bufio.ErrBufferFull {
			if len(lr.long) > maxLoadLine {
				return nil, fmt.Errorf("sacct: line %d: row exceeds %d bytes", lr.line+1, maxLoadLine)
			}
			line, err = lr.r.ReadSlice('\n')
			lr.long = append(lr.long, line...)
		}
		line = lr.long
	}
	if err != nil && err != io.EOF {
		return nil, err
	}
	if len(line) == 0 {
		return nil, io.EOF
	}
	lr.line++
	if n := len(line); line[n-1] == '\n' {
		line = line[:n-1]
	}
	if len(line) > maxLoadLine {
		return nil, fmt.Errorf("sacct: line %d: row exceeds %d bytes", lr.line, maxLoadLine)
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// Load reads a text Dump back into a store. Malformed lines are returned
// in count; the paper's curation stage discards them downstream, so the
// store keeps only clean rows.
func Load(r io.Reader) (*Store, int, error) {
	lr := &loadLineReader{r: bufio.NewReaderSize(r, 1<<16)}
	header, err := lr.next()
	if err == io.EOF {
		return nil, 0, fmt.Errorf("sacct: empty dump")
	}
	if err != nil {
		return nil, 0, err
	}
	fields := strings.Split(strings.TrimSpace(string(header)), slurm.Separator)
	for _, f := range fields {
		if _, ok := slurm.FieldByName(f); !ok {
			return nil, 0, fmt.Errorf("sacct: dump header has unknown field %q", f)
		}
	}
	st := NewStore()
	malformed := 0
	for {
		raw, err := lr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, malformed, err
		}
		line := string(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		rec, err := slurm.DecodeRecord(line, fields)
		if err != nil {
			malformed++
			continue
		}
		if err := st.Add(*rec); err != nil {
			// Unreachable for a fresh text store (no lazy shards), but
			// the error is not ours to swallow if that ever changes.
			return nil, malformed, err
		}
	}
	st.Finalize()
	return st, malformed, nil
}

// LoadFile reads a text dump file.
func LoadFile(path string) (*Store, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return Load(f)
}
