package sacct

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/sched"
	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

var base = time.Date(2024, 1, 10, 0, 0, 0, 0, time.UTC)

// storeCache shares simulated stores across tests; stores are read-only
// after Finalize, so reuse is safe.
var storeCache = map[int]struct {
	st  *Store
	res *sched.Result
}{}

// buildStore simulates a small Frontier workload spanning two months and
// ingests it. Results are cached per window length.
func buildStore(t *testing.T, days int) (*Store, *sched.Result) {
	t.Helper()
	if c, ok := storeCache[days]; ok {
		return c.st, c.res
	}
	p := tracegen.FrontierProfile()
	p.JobsPerDay, p.Users = 30, 25
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: p, Start: base, End: base.AddDate(0, 0, days),
	}}, 17)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := sched.New(sched.DefaultConfig(cluster.Frontier()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(reqs, sched.Options{EmitSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	if err := st.Ingest(res); err != nil {
		t.Fatal(err)
	}
	st.Finalize()
	storeCache[days] = struct {
		st  *Store
		res *sched.Result
	}{st, res}
	return st, res
}

func TestMonthArithmetic(t *testing.T) {
	m := Month{2024, time.December}
	if n := m.Next(); n.Year != 2025 || n.Mon != time.January {
		t.Errorf("Next = %v", n)
	}
	if m.String() != "2024-12" {
		t.Errorf("String = %q", m.String())
	}
	p, err := ParseMonth("2024-03")
	if err != nil || p != (Month{2024, time.March}) {
		t.Errorf("ParseMonth = %v, %v", p, err)
	}
	if _, err := ParseMonth("March 2024"); err == nil {
		t.Error("bad month: want error")
	}
	if !(Month{2023, time.December}).Before(Month{2024, time.January}) {
		t.Error("Before is wrong across years")
	}
}

func TestStoreShardsAndCounts(t *testing.T) {
	st, res := buildStore(t, 40) // spans Jan and Feb
	if st.Len() != len(res.Jobs)+len(res.Steps) {
		t.Errorf("Len = %d, want %d", st.Len(), len(res.Jobs)+len(res.Steps))
	}
	months := st.Months()
	if len(months) < 2 {
		t.Fatalf("months = %v, want at least 2 shards", months)
	}
	for i := 1; i < len(months); i++ {
		if !months[i-1].Before(months[i]) {
			t.Error("Months not sorted")
		}
	}
}

func TestQueryJobsOnly(t *testing.T) {
	st, res := buildStore(t, 10)
	recs, err := st.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(res.Jobs) {
		t.Errorf("job-only select = %d, want %d", len(recs), len(res.Jobs))
	}
	for i := range recs {
		if recs[i].IsStep() {
			t.Fatal("job-only query returned a step")
		}
	}
	all, err := st.Select(Query{IncludeSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != st.Len() {
		t.Errorf("full select = %d, want %d", len(all), st.Len())
	}
}

func TestQueryWindowAndFilters(t *testing.T) {
	st, _ := buildStore(t, 10)
	mid := base.AddDate(0, 0, 5)
	early, err := st.Select(Query{End: mid})
	if err != nil {
		t.Fatal(err)
	}
	late, err := st.Select(Query{Start: mid})
	if err != nil {
		t.Fatal(err)
	}
	whole, _ := st.Select(Query{})
	if len(early)+len(late) != len(whole) {
		t.Errorf("window partition broken: %d + %d != %d", len(early), len(late), len(whole))
	}
	for _, r := range early {
		if !r.Submit.Before(mid) {
			t.Fatal("early window returned late record")
		}
	}
	// Filter by a user that exists.
	user := whole[0].User
	mine, err := st.Select(Query{User: user})
	if err != nil {
		t.Fatal(err)
	}
	if len(mine) == 0 {
		t.Fatal("user filter returned nothing")
	}
	for _, r := range mine {
		if r.User != user {
			t.Fatal("user filter leaked")
		}
	}
	cancelled, err := st.Select(Query{State: "CANCELLED"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cancelled {
		if r.State != slurm.StateCancelled {
			t.Fatal("state filter leaked")
		}
	}
}

func TestQueryErrors(t *testing.T) {
	st, _ := buildStore(t, 3)
	if _, err := st.Select(Query{Fields: []string{"Bogus"}}); err == nil {
		t.Error("unknown field: want error")
	}
	if _, err := st.Select(Query{State: "EXPLODED"}); err == nil {
		t.Error("unknown state: want error")
	}
	if _, err := st.Select(Query{Start: base, End: base}); err == nil {
		t.Error("empty window: want error")
	}
}

func TestWriteFormat(t *testing.T) {
	st, _ := buildStore(t, 3)
	var buf bytes.Buffer
	n, err := st.Write(&buf, Query{Fields: []string{"JobID", "User", "State"}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "JobID|User|State" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines)-1 != n {
		t.Errorf("wrote %d rows, reported %d", len(lines)-1, n)
	}
	for _, l := range lines[1:] {
		if strings.Count(l, "|") != 2 {
			t.Fatalf("bad row %q", l)
		}
	}
}

func TestDumpLoadRoundTrip(t *testing.T) {
	st, _ := buildStore(t, 5)
	var buf bytes.Buffer
	if err := st.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	st2, malformed, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if malformed != 0 {
		t.Errorf("malformed = %d on a clean dump", malformed)
	}
	if st2.Len() != st.Len() {
		t.Errorf("round trip lost records: %d vs %d", st2.Len(), st.Len())
	}
	a, _ := st.Select(Query{IncludeSteps: true})
	b, _ := st2.Select(Query{IncludeSteps: true})
	for i := range a {
		if a[i].ID != b[i].ID || a[i].State != b[i].State || !a[i].Submit.Equal(b[i].Submit) {
			t.Fatalf("record %d differs after round trip", i)
		}
	}
}

func TestLoadMalformedLines(t *testing.T) {
	in := "JobID|User|State\n" +
		"100001|alice|COMPLETED\n" +
		"100002|bob\n" + // missing column
		"100003|carol|NOT_A_STATE\n" + // bad state
		"100004|dave|FAILED\n"
	st, malformed, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if malformed != 2 {
		t.Errorf("malformed = %d, want 2", malformed)
	}
	if st.Len() != 2 {
		t.Errorf("kept = %d, want 2", st.Len())
	}
	if _, _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty dump: want error")
	}
	if _, _, err := Load(strings.NewReader("JobID|Nope\n")); err == nil {
		t.Error("unknown header field: want error")
	}
}

func TestDumpFileLoadFile(t *testing.T) {
	st, _ := buildStore(t, 3)
	path := filepath.Join(t.TempDir(), "dump.txt")
	if err := st.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	st2, _, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Errorf("file round trip lost records")
	}
	if _, _, err := LoadFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing file: want error")
	}
}

func TestFetchMonthly(t *testing.T) {
	st, _ := buildStore(t, 40)
	dir := t.TempDir()
	f := &Fetcher{Store: st, CacheDir: dir, Workers: 3}
	spec := FetchSpec{
		Granularity: Monthly,
		Start:       base,
		End:         base.AddDate(0, 0, 40),
	}
	files, err := f.Fetch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("files = %d, want one per month", len(files))
	}
	total := 0
	for _, ff := range files {
		if ff.Cached {
			t.Errorf("first fetch of %s served from cache", ff.Period)
		}
		data, err := os.ReadFile(ff.Path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Count(string(data), "\n")
		if lines-1 != ff.Rows {
			t.Errorf("%s: file has %d rows, reported %d", ff.Period, lines-1, ff.Rows)
		}
		total += ff.Rows
	}
	if total != st.Len() {
		t.Errorf("fetched %d rows, store has %d", total, st.Len())
	}

	// Second fetch with cache: everything served from disk.
	spec.UseCache = true
	again, err := f.Fetch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, ff := range again {
		if !ff.Cached {
			t.Errorf("%s not served from cache", ff.Period)
		}
	}
}

func TestFetchYearly(t *testing.T) {
	st, _ := buildStore(t, 40)
	f := &Fetcher{Store: st, CacheDir: t.TempDir()}
	files, err := f.Fetch(context.Background(), FetchSpec{
		Granularity: Yearly,
		Start:       time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC),
		End:         time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Period != "2024" {
		t.Fatalf("files = %+v", files)
	}
	if files[0].Rows != st.Len() {
		t.Errorf("yearly fetch rows = %d, want %d", files[0].Rows, st.Len())
	}
}

func TestFetchErrors(t *testing.T) {
	st, _ := buildStore(t, 2)
	f := &Fetcher{Store: st, CacheDir: t.TempDir()}
	if _, err := f.Fetch(context.Background(), FetchSpec{Granularity: Monthly}); err == nil {
		t.Error("zero window: want error")
	}
	noStore := &Fetcher{CacheDir: t.TempDir()}
	if _, err := noStore.Fetch(context.Background(), FetchSpec{}); err == nil {
		t.Error("no store: want error")
	}
	noDir := &Fetcher{Store: st}
	if _, err := noDir.Fetch(context.Background(), FetchSpec{}); err == nil {
		t.Error("no cache dir: want error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.Fetch(ctx, FetchSpec{
		Granularity: Monthly, Start: base, End: base.AddDate(0, 2, 0),
	})
	if err == nil {
		// A cancelled context may still win the race for tiny stores; the
		// guarantee is only that cancellation is honoured when workers
		// block, so do not fail hard here — but the files must be valid.
		t.Log("cancelled fetch completed before observing cancellation")
	}
}

func TestParseGranularity(t *testing.T) {
	for _, s := range []string{"months", "monthly", "month"} {
		g, err := ParseGranularity(s)
		if err != nil || g != Monthly {
			t.Errorf("ParseGranularity(%q) = %v, %v", s, g, err)
		}
	}
	g, err := ParseGranularity("years")
	if err != nil || g != Yearly {
		t.Errorf("years: %v, %v", g, err)
	}
	if _, err := ParseGranularity("decade"); err == nil {
		t.Error("bad granularity: want error")
	}
	if Monthly.String() != "monthly" || Yearly.String() != "yearly" {
		t.Error("String() spellings wrong")
	}
}
