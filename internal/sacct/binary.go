package sacct

import (
	"context"
	"errors"
	"fmt"
	"io"
	"slices"

	"slurmsight/internal/obs"
	"slurmsight/internal/sacct/colstore"
	"slurmsight/internal/slurm"
)

// This file wires the binary columnar shard store (colstore) into Store:
// DumpBinary/OpenBinary persistence, format auto-detection, and the
// lazy-shard plumbing that lets Scan/Query run unchanged over a store
// whose months still live on disk as columns.

// DumpBinary writes the full store in the binary columnar format.
// Lazy shards from a backing binary file are materialised first (a
// re-dump re-encodes them).
func (s *Store) DumpBinary(w io.Writer) error {
	shards, err := s.shardInputs()
	if err != nil {
		return err
	}
	return colstore.Write(w, shards)
}

// DumpBinaryFile writes the binary columnar format to path atomically
// (temp file + rename).
func (s *Store) DumpBinaryFile(path string) error {
	shards, err := s.shardInputs()
	if err != nil {
		return err
	}
	return colstore.WriteFile(path, shards)
}

func (s *Store) shardInputs() ([]colstore.ShardInput, error) {
	months, recs, err := s.snapshot()
	if err != nil {
		return nil, err
	}
	ins := make([]colstore.ShardInput, len(months))
	for i, m := range months {
		ins[i] = colstore.ShardInput{Year: m.Year, Mon: m.Mon, Records: recs[i]}
	}
	return ins, nil
}

// OpenBinary opens a binary columnar dump as a lazy store: the call
// costs one footer parse, and each month shard decodes on first use.
// A file without the columnar magic returns colstore.ErrNotColstore;
// callers wanting text fallback should use OpenFile instead.
func OpenBinary(path string) (*Store, error) {
	f, err := colstore.Open(path)
	if err != nil {
		return nil, err
	}
	st := NewStore()
	st.bin = f
	for _, sh := range f.Shards() {
		m := Month{Year: sh.Year(), Mon: sh.Mon()}
		if _, dup := st.lazy[m]; dup {
			f.Close()
			return nil, fmt.Errorf("%w: duplicate shard %s", colstore.ErrCorrupt, m)
		}
		st.lazy[m] = sh
	}
	return st, nil
}

// OpenFile opens a store dump in either format: binary columnar files
// load lazily via OpenBinary, anything else goes through the text
// loader (malformed returned as from LoadFile, always 0 for binary).
func OpenFile(path string) (*Store, int, error) {
	st, err := OpenBinary(path)
	if err == nil {
		return st, 0, nil
	}
	if errors.Is(err, colstore.ErrNotColstore) {
		return LoadFile(path)
	}
	return nil, 0, err
}

// Binary reports whether the store is backed by a columnar file.
func (s *Store) Binary() bool { return s.bin != nil }

// Instrument mirrors the backing columnar file's read counters into reg
// (colstore_* metrics). No-op for text-backed stores or nil registries.
func (s *Store) Instrument(reg *obs.Registry) {
	if s.bin != nil {
		s.bin.Instrument(reg)
	}
}

// ColstoreStats snapshots the backing file's read counters; ok is false
// for text-backed stores.
func (s *Store) ColstoreStats() (colstore.Stats, bool) {
	if s.bin == nil {
		return colstore.Stats{}, false
	}
	return s.bin.Stats(), true
}

// Close releases the backing columnar mapping, if any. Shards already
// materialised stay queryable; shards still lazy become unreadable, so
// close only after the store's consumers are done.
func (s *Store) Close() error {
	if s.bin == nil {
		return nil
	}
	return s.bin.Close()
}

// hasLazy reports whether any month still lives on disk undecoded.
func (s *Store) hasLazy() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.lazy) > 0
}

// shardView resolves one month for a scan. Materialised shards return
// as-is. A lazy shard with a projection (and stored in emission order,
// so the scan's binary search stays valid) decodes just those columns,
// transiently — the store keeps no copy. Otherwise the shard
// materialises fully and is cached for every later scan. The context
// carries the active request span, if any, so first-touch decode cost
// lands on the request that paid it.
func (s *Store) shardView(ctx context.Context, m Month, proj []string) ([]slurm.Record, bool, error) {
	s.mu.RLock()
	shard, ok := s.shards[m]
	sorted := s.sorted[m]
	lz := s.lazy[m]
	s.mu.RUnlock()
	if ok || lz == nil {
		return shard, sorted, nil
	}
	if proj != nil && lz.Sorted() {
		recs, err := lz.DecodeColumnsCtx(ctx, proj)
		return recs, true, err
	}
	s.mu.Lock()
	err := s.materializeLocked(ctx, m)
	shard, sorted = s.shards[m], s.sorted[m]
	s.mu.Unlock()
	return shard, sorted, err
}

// materializeLocked decodes a lazy shard into the in-memory maps. The
// caller holds s.mu. Losing a materialisation race is fine: the winner
// already deleted the lazy entry and this call is a no-op.
func (s *Store) materializeLocked(ctx context.Context, m Month) error {
	sh, ok := s.lazy[m]
	if !ok {
		return nil
	}
	recs, err := sh.DecodeAllCtx(ctx)
	if err != nil {
		return err
	}
	if !sh.Sorted() {
		slices.SortStableFunc(recs, recordCmp)
	}
	s.shards[m] = recs
	s.sorted[m] = true
	if min, max, ok := sh.SubmitRange(); ok {
		s.ranges[m] = shardRange{min: min.UnixNano(), max: max.UnixNano()}
	}
	delete(s.lazy, m)
	return nil
}

// Warm materialises every lazy shard up front, trading startup time
// for uniform in-memory scan latency — the right call for an always-on
// query service, where the first client should not pay the decode.
// Shards decode concurrently over the store's decode pool (see
// SetDecodeWorkers); the warmed store is identical to a sequential
// warm's at every worker count.
func (s *Store) Warm() error { return s.materializeAll() }

// WarmCtx is Warm under a request context: when ctx carries an active
// obs span, each shard decode reports itself under it.
func (s *Store) WarmCtx(ctx context.Context) error { return s.warmMonths(ctx, nil) }

// materializeAll decodes every remaining lazy shard over the decode
// pool.
func (s *Store) materializeAll() error {
	return s.warmMonths(context.Background(), nil)
}
