package sacct

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"slurmsight/internal/obs"
	"slurmsight/internal/sacct/colstore"
)

// dumpBinary writes st to a temp columnar file.
func dumpBinary(t *testing.T, st *Store) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.colstore")
	if err := st.DumpBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// queryText renders a query as pipe text, the byte-level comparison
// baseline between stores.
func queryText(t *testing.T, st *Store, q Query) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := st.Write(&buf, q); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestBinaryRoundTripQueryIdentical(t *testing.T) {
	st, _ := buildStore(t, 40) // two month shards, jobs + steps
	bin, err := OpenBinary(dumpBinary(t, st))
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()

	if bin.Len() != st.Len() {
		t.Fatalf("lazy Len = %d, want %d", bin.Len(), st.Len())
	}
	if got, want := bin.Months(), st.Months(); len(got) != len(want) {
		t.Fatalf("months = %v, want %v", got, want)
	}

	queries := []Query{
		{},                   // jobs only, all fields
		{IncludeSteps: true}, // everything
		{Fields: []string{"JobID", "User", "State"}},
		{Fields: []string{"JobID", "Submit", "Elapsed"}, IncludeSteps: true},
		{Start: base.AddDate(0, 0, 10), End: base.AddDate(0, 0, 30)},
		{State: "COMPLETED", Fields: []string{"JobID", "NNodes", "ElapSED"}},
	}
	for i, q := range queries {
		want := queryText(t, st, q)
		got := queryText(t, bin, q)
		if got != want {
			t.Errorf("query %d output differs (%d vs %d bytes)", i, len(got), len(want))
		}
	}

	// Select paths must agree record-for-record too.
	a, err := st.Select(Query{IncludeSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bin.Select(Query{IncludeSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("select sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Submit.Equal(b[i].Submit) || a[i].State != b[i].State {
			t.Fatalf("record %d differs after binary round trip", i)
		}
	}
}

func TestBinaryDumpFromBinaryStore(t *testing.T) {
	st, _ := buildStore(t, 5)
	bin, err := OpenBinary(dumpBinary(t, st))
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	// Re-dumping a lazy store materialises and must lose nothing —
	// and the text dumps must be byte-identical.
	var a, b bytes.Buffer
	if err := st.Dump(&a); err != nil {
		t.Fatal(err)
	}
	if err := bin.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("text dump differs between text- and binary-backed stores")
	}
}

func TestOpenFileAutoDetect(t *testing.T) {
	st, _ := buildStore(t, 3)
	dir := t.TempDir()

	textPath := filepath.Join(dir, "dump.txt")
	if err := st.DumpFile(textPath); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "dump.colstore")
	if err := st.DumpBinaryFile(binPath); err != nil {
		t.Fatal(err)
	}

	fromText, _, err := OpenFile(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if fromText.Binary() {
		t.Error("text dump opened as binary")
	}
	fromBin, _, err := OpenFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	defer fromBin.Close()
	if !fromBin.Binary() {
		t.Error("binary dump not detected")
	}
	if fromText.Len() != st.Len() || fromBin.Len() != st.Len() {
		t.Errorf("lens: text %d, bin %d, want %d", fromText.Len(), fromBin.Len(), st.Len())
	}

	// A corrupt binary file must error out, not fall back to text.
	data, _ := os.ReadFile(binPath)
	data[len(data)-1] ^= 0xFF
	bad := filepath.Join(dir, "bad.colstore")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFile(bad); !errors.Is(err, colstore.ErrCorrupt) {
		t.Errorf("corrupt open = %v, want ErrCorrupt", err)
	}
}

func TestProjectedWriteReadsOnlySelectedColumns(t *testing.T) {
	st, _ := buildStore(t, 10)
	bin, err := OpenBinary(dumpBinary(t, st))
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()

	before, ok := bin.ColstoreStats()
	if !ok {
		t.Fatal("binary store reports no colstore stats")
	}
	var buf bytes.Buffer
	if _, err := bin.Write(&buf, Query{Fields: []string{"User", "Elapsed"}}); err != nil {
		t.Fatal(err)
	}
	after, _ := bin.ColstoreStats()

	// The projection needs User + Elapsed + JobID (step detection):
	// three columns per shard, nothing else, and in particular far
	// fewer bytes than the whole file.
	months := int64(len(bin.Months()))
	if n := after.ColumnsRead - before.ColumnsRead; n != 3*months {
		t.Errorf("ColumnsRead delta = %d, want %d", n, 3*months)
	}
	if after.BytesRead >= after.BytesMapped {
		t.Errorf("projected write read %d of %d mapped bytes", after.BytesRead, after.BytesMapped)
	}
	if bin.hasLazy() != true {
		t.Error("projected write materialised shards")
	}

	// And the rendered text must still match the text store exactly.
	want := queryText(t, st, Query{Fields: []string{"User", "Elapsed"}})
	if buf.String() != want {
		t.Error("projected write output differs from text store")
	}

	// A full scan afterwards materialises and caches.
	if _, err := bin.Select(Query{IncludeSteps: true}); err != nil {
		t.Fatal(err)
	}
	if bin.hasLazy() {
		t.Error("full scan left shards lazy")
	}
}

func TestBinaryStoreInstrument(t *testing.T) {
	st, _ := buildStore(t, 3)
	bin, err := OpenBinary(dumpBinary(t, st))
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	reg := obs.NewRegistry()
	bin.Instrument(reg)
	if _, err := bin.Select(Query{}); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("colstore_shards_opened_total").Value(); v == 0 {
		t.Error("shards-opened counter not incremented")
	}
	if v := reg.Counter("colstore_bytes_read_total").Value(); v == 0 {
		t.Error("bytes-read counter not incremented")
	}
	if v := reg.Gauge("colstore_bytes_mapped").Value(); v == 0 {
		t.Error("bytes-mapped gauge not set")
	}
	// Text stores are a no-op, not a panic.
	st.Instrument(reg)
	if _, ok := st.ColstoreStats(); ok {
		t.Error("text store claims colstore stats")
	}
}

func TestBinaryConcurrentScans(t *testing.T) {
	st, _ := buildStore(t, 20)
	bin, err := OpenBinary(dumpBinary(t, st))
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	want := st.Len()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		q := Query{IncludeSteps: true}
		if i%3 == 1 {
			q.Fields = []string{"JobID", "User"}
		}
		go func(q Query) {
			defer wg.Done()
			if q.Fields != nil {
				var buf bytes.Buffer
				if _, err := bin.Write(&buf, q); err != nil {
					errs <- err
				}
				return
			}
			recs, err := bin.Select(q)
			if err != nil {
				errs <- err
				return
			}
			if len(recs) != want {
				errs <- errors.New("concurrent scan lost records")
			}
		}(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestAddIntoLazyShardMaterialises(t *testing.T) {
	st, _ := buildStore(t, 3)
	bin, err := OpenBinary(dumpBinary(t, st))
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	recs, err := st.Select(Query{})
	if err != nil || len(recs) == 0 {
		t.Fatalf("seed select: %d recs, %v", len(recs), err)
	}
	extra := recs[0]
	extra.ID.Job += 1_000_000
	if err := bin.Add(extra); err != nil {
		t.Fatal(err)
	}
	bin.Finalize()
	if bin.Len() != st.Len()+1 {
		t.Errorf("Len after Add = %d, want %d", bin.Len(), st.Len()+1)
	}
	got, err := bin.Select(Query{User: extra.User})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range got {
		if got[i].ID == extra.ID {
			found = true
		}
	}
	if !found {
		t.Error("record added into lazy shard not found")
	}
}

func TestLoadOversizedRowError(t *testing.T) {
	var b bytes.Buffer
	b.WriteString("JobID|User|State\n")
	b.WriteString("100001|alice|COMPLETED\n")
	b.WriteString("100002|")
	for b.Len() < maxLoadLine+64 {
		b.WriteString("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
	}
	b.WriteString("|FAILED\n")
	_, _, err := Load(&b)
	if err == nil {
		t.Fatal("oversized row: want error")
	}
	if want := "line 3"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q does not name the line", err)
	}
}

func TestLoadLongButLegalRow(t *testing.T) {
	// A row longer than the reader buffer (64 KiB) but under the cap
	// must decode, not error: the old fixed-buffer scanner failed here.
	comment := bytes.Repeat([]byte("c"), 1<<17)
	var b bytes.Buffer
	b.WriteString("JobID|User|State|Comment\n")
	b.WriteString("100001|alice|COMPLETED|")
	b.Write(comment)
	b.WriteString("\n")
	st, malformed, err := Load(&b)
	if err != nil {
		t.Fatal(err)
	}
	if malformed != 0 || st.Len() != 1 {
		t.Fatalf("malformed=%d len=%d", malformed, st.Len())
	}
	recs, _ := st.Select(Query{Fields: []string{"Comment"}})
	if len(recs) != 1 || len(recs[0].Comment) != len(comment) {
		t.Error("long comment did not survive the load")
	}
}
