package sacct

import (
	"math/rand"
	"testing"
	"time"

	"slurmsight/internal/slurm"
)

// randomStore builds a store of nRecs records with random submit times
// across a few months, random users/accounts/partitions/states, and a
// mix of job and step rows.
func randomStore(rng *rand.Rand, nRecs int) *Store {
	users := []string{"alice", "bob", "carol", "dave"}
	accounts := []string{"csc000", "mat101", "bio202"}
	partitions := []string{"batch", "debug"}
	states := []slurm.State{slurm.StateCompleted, slurm.StateFailed, slurm.StateCancelled, slurm.StateTimeout}
	origin := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	st := NewStore()
	for i := 0; i < nRecs; i++ {
		id := slurm.NewJobID(int64(100000 + rng.Intn(nRecs)))
		if rng.Intn(3) == 0 {
			id = id.WithStep(int64(rng.Intn(4)))
		}
		submit := origin.Add(time.Duration(rng.Int63n(int64(100 * 24 * time.Hour))))
		if err := st.Add(slurm.Record{
			ID:        id,
			User:      users[rng.Intn(len(users))],
			Account:   accounts[rng.Intn(len(accounts))],
			Partition: partitions[rng.Intn(len(partitions))],
			State:     states[rng.Intn(len(states))],
			Submit:    submit,
			Start:     submit.Add(time.Hour),
			End:       submit.Add(2 * time.Hour),
			Elapsed:   time.Hour,
			NNodes:    int64(1 + rng.Intn(512)),
		}); err != nil {
			panic(err)
		}
	}
	return st
}

// randomQuery draws a query with a random mix of bounds and filters.
func randomQuery(rng *rand.Rand) Query {
	origin := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	q := Query{IncludeSteps: rng.Intn(2) == 0}
	if rng.Intn(3) != 0 {
		q.Start = origin.Add(time.Duration(rng.Int63n(int64(90 * 24 * time.Hour))))
	}
	if rng.Intn(3) != 0 {
		end := origin.Add(time.Duration(rng.Int63n(int64(110 * 24 * time.Hour))))
		if !q.Start.IsZero() && !q.Start.Before(end) {
			end = q.Start.Add(time.Duration(1 + rng.Int63n(int64(30*24*time.Hour))))
		}
		q.End = end
	}
	if rng.Intn(3) == 0 {
		q.User = []string{"alice", "bob", "nobody"}[rng.Intn(3)]
	}
	if rng.Intn(4) == 0 {
		q.Account = "csc000"
	}
	if rng.Intn(4) == 0 {
		q.Partition = "debug"
	}
	if rng.Intn(4) == 0 {
		q.State = "COMPLETED"
	}
	return q
}

// bruteSelect is the reference implementation: full scans of every shard
// in month order, matching each record individually. Scan and Select
// must agree with it exactly, records and order both.
func bruteSelect(t *testing.T, s *Store, q Query) []slurm.Record {
	t.Helper()
	_, st, filterState, err := q.validate()
	if err != nil {
		t.Fatal(err)
	}
	var out []slurm.Record
	for _, m := range s.Months() {
		shard := s.shards[m]
		for i := range shard {
			if q.matches(&shard[i], st, filterState) {
				out = append(out, shard[i])
			}
		}
	}
	return out
}

func TestScanSelectAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		s := randomStore(rng, 200+rng.Intn(400))
		if trial%2 == 0 {
			s.Finalize() // exercise both sorted and unsorted shard paths
		}
		for qi := 0; qi < 10; qi++ {
			q := randomQuery(rng)
			want := bruteSelect(t, s, q)

			got, err := s.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d query %+v: Select %d records, brute force %d",
					trial, q, len(got), len(want))
			}
			var scanned []slurm.Record
			for r, err := range s.Scan(q) {
				if err != nil {
					t.Fatal(err)
				}
				scanned = append(scanned, *r)
			}
			for i := range want {
				if got[i].ID != want[i].ID || !got[i].Submit.Equal(want[i].Submit) {
					t.Fatalf("trial %d: Select[%d] = %v@%v, want %v@%v",
						trial, i, got[i].ID, got[i].Submit, want[i].ID, want[i].Submit)
				}
				if scanned[i].ID != want[i].ID {
					t.Fatalf("trial %d: Scan[%d] = %v, want %v", trial, i, scanned[i].ID, want[i].ID)
				}
			}
			if len(scanned) != len(want) {
				t.Fatalf("trial %d: Scan %d records, want %d", trial, len(scanned), len(want))
			}
		}
	}
}

func TestScanInvalidQuery(t *testing.T) {
	s := NewStore()
	sawErr := false
	for _, err := range s.Scan(Query{Fields: []string{"Mystery"}}) {
		if err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("invalid query: want terminal error from Scan")
	}
}

func TestScanEarlyBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomStore(rng, 100)
	s.Finalize()
	n := 0
	for _, err := range s.Scan(Query{IncludeSteps: true}) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 5 {
			break
		}
	}
	if n != 5 {
		t.Errorf("broke after %d records", n)
	}
}

func TestFinalizeSkipsSortedShards(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randomStore(rng, 300)
	s.Finalize()
	// Round-trip through a dump: records arrive back in sorted order, so
	// the reloaded store's Finalize must detect every shard as sorted.
	for _, m := range s.Months() {
		shard := s.shards[m]
		if !s.sorted[m] {
			t.Errorf("shard %v not marked sorted after Finalize", m)
		}
		for i := 1; i < len(shard); i++ {
			if recordLess(&shard[i], &shard[i-1]) {
				t.Fatalf("shard %v out of order at %d", m, i)
			}
		}
	}
	// Adding invalidates the flag.
	if err := s.Add(slurm.Record{ID: slurm.NewJobID(1), Submit: time.Date(2024, 2, 2, 0, 0, 0, 0, time.UTC)}); err != nil {
		t.Fatal(err)
	}
	if s.sorted[Month{2024, time.February}] {
		t.Error("Add did not invalidate the sorted flag")
	}
}

// BenchmarkFinalize measures the already-sorted fast path (the common
// reload-from-dump case) against a shuffled ingest that needs the sort.
func BenchmarkFinalize(b *testing.B) {
	build := func(n int, shuffle bool) *Store {
		rng := rand.New(rand.NewSource(3))
		recs := make([]slurm.Record, n)
		origin := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
		for i := range recs {
			recs[i] = slurm.Record{
				ID:     slurm.NewJobID(int64(100000 + i)),
				Submit: origin.Add(time.Duration(i) * time.Second),
			}
		}
		if shuffle {
			rng.Shuffle(n, func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
		}
		s := NewStore()
		if err := s.Add(recs...); err != nil {
			b.Fatal(err)
		}
		return s
	}
	for _, bench := range []struct {
		name    string
		shuffle bool
	}{{"presorted", false}, {"shuffled", true}} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := build(50000, bench.shuffle)
				b.StartTimer()
				s.Finalize()
			}
		})
	}
}
