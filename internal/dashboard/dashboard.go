// Package dashboard serves a workflow output directory as an interactive
// dashboard — the Plotly Dash substitute. It exposes the consolidated
// index the workflow generated, each figure's interactive HTML, the LLM
// insight markdown (rendered minimally), and a JSON inventory for
// programmatic consumers.
package dashboard

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Server serves one workflow output directory.
type Server struct {
	dir string
}

// New validates the directory and returns a server.
func New(dir string) (*Server, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("dashboard: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("dashboard: %s is not a directory", dir)
	}
	return &Server{dir: dir}, nil
}

// Inventory describes the artifacts present in the directory.
type Inventory struct {
	Figures  []string `json:"figures"`  // interactive chart pages
	Specs    []string `json:"specs"`    // chart-spec JSON files
	Insights []string `json:"insights"` // LLM analyses
	PNGs     []string `json:"pngs"`
	CSVs     []string `json:"csvs"`
	Dataflow string   `json:"dataflow,omitempty"` // workflow.dot
	Report   string   `json:"report,omitempty"`   // report.md
	Facts    string   `json:"facts,omitempty"`    // facts.json
}

// scan builds the inventory from the directory contents.
func (s *Server) scan() (*Inventory, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	inv := &Inventory{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case name == "workflow.dot":
			inv.Dataflow = name
		case name == "report.md":
			inv.Report = name
		case name == "facts.json":
			inv.Facts = name
		case strings.HasSuffix(name, ".insight.md") || strings.HasSuffix(name, "-compare.md"):
			inv.Insights = append(inv.Insights, name)
		case strings.HasSuffix(name, ".html") && name != "dashboard.html":
			inv.Figures = append(inv.Figures, name)
		case strings.HasSuffix(name, ".json"):
			inv.Specs = append(inv.Specs, name)
		case strings.HasSuffix(name, ".png"):
			inv.PNGs = append(inv.PNGs, name)
		case strings.HasSuffix(name, ".csv"):
			inv.CSVs = append(inv.CSVs, name)
		}
	}
	for _, list := range [][]string{inv.Figures, inv.Specs, inv.Insights, inv.PNGs, inv.CSVs} {
		sort.Strings(list)
	}
	return inv, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/api/inventory", s.handleInventory)
	mux.Handle("/files/", http.StripPrefix("/files/", http.FileServer(http.Dir(s.dir))))
	mux.HandleFunc("/insight/", s.handleInsight)
	return mux
}

func (s *Server) handleInventory(w http.ResponseWriter, r *http.Request) {
	inv, err := s.scan()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(inv)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	inv, err := s.scan()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8"><title>SlurmSight</title><style>
body{font-family:sans-serif;margin:2em;max-width:1100px;}
iframe{border:1px solid #ccc;width:100%;height:600px;}
nav a{margin-right:1em;}
</style></head><body><h1>SlurmSight dashboard</h1><nav>`)
	for _, f := range inv.Figures {
		fmt.Fprintf(&b, `<a href="#%s">%s</a>`, html.EscapeString(f), html.EscapeString(strings.TrimSuffix(f, ".html")))
	}
	b.WriteString("</nav>")
	for _, f := range inv.Figures {
		fmt.Fprintf(&b, `<h2 id=%q>%s</h2><iframe src="/files/%s"></iframe>`,
			html.EscapeString(f), html.EscapeString(strings.TrimSuffix(f, ".html")), html.EscapeString(f))
	}
	if inv.Report != "" {
		fmt.Fprintf(&b, `<p><a href="/insight/%s">analysis report</a></p>`, html.EscapeString(inv.Report))
	}
	if len(inv.Insights) > 0 {
		b.WriteString("<h2>LLM analyses</h2><ul>")
		for _, f := range inv.Insights {
			fmt.Fprintf(&b, `<li><a href="/insight/%s">%s</a></li>`,
				html.EscapeString(f), html.EscapeString(f))
		}
		b.WriteString("</ul>")
	}
	b.WriteString("</body></html>")
	fmt.Fprint(w, b.String())
}

// handleInsight renders an insight markdown file as minimal HTML.
func (s *Server) handleInsight(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/insight/")
	if name == "" || strings.Contains(name, "/") || strings.Contains(name, "..") {
		http.NotFound(w, r)
		return
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8"><style>body{font-family:sans-serif;margin:2em;max-width:900px;}</style></head><body>`)
	for _, line := range strings.Split(string(data), "\n") {
		esc := html.EscapeString(line)
		switch {
		case strings.HasPrefix(line, "## "):
			fmt.Fprintf(&b, "<h2>%s</h2>", strings.TrimPrefix(esc, "## "))
		case strings.HasPrefix(line, "# "):
			fmt.Fprintf(&b, "<h1>%s</h1>", strings.TrimPrefix(esc, "# "))
		case strings.HasPrefix(line, "- "):
			fmt.Fprintf(&b, "<li>%s</li>", strings.TrimPrefix(esc, "- "))
		case strings.TrimSpace(line) == "":
			b.WriteString("<p></p>")
		default:
			fmt.Fprintf(&b, "%s<br>", esc)
		}
	}
	b.WriteString("</body></html>")
	fmt.Fprint(w, b.String())
}
