package dashboard

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fixtureDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"fig4-wait-times.html":       "<html>waits</html>",
		"fig6-backfill.html":         "<html>backfill</html>",
		"dashboard.html":             "<html>index</html>",
		"fig4-wait-times.json":       `{"title":"w"}`,
		"fig4-wait-times.png":        "not-a-real-png",
		"fig4-wait-times.insight.md": "# LLM analysis\n\n- stat: 1\n\n## Statistics\n",
		"wait-times-compare.md":      "# compare\n",
		"slurm-2024-01.csv":          "JobID\n1\n",
		"workflow.dot":               "digraph workflow {}\n",
		"report.md":                  "# Scheduling analysis report\n",
		"facts.json":                 `{"system":"frontier"}`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestNewValidation(t *testing.T) {
	if _, err := New(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing dir: want error")
	}
	f := filepath.Join(t.TempDir(), "file")
	os.WriteFile(f, []byte("x"), 0o644)
	if _, err := New(f); err == nil {
		t.Error("plain file: want error")
	}
	if _, err := New(t.TempDir()); err != nil {
		t.Errorf("valid dir rejected: %v", err)
	}
}

func TestInventory(t *testing.T) {
	s, err := New(fixtureDir(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/inventory")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var inv Inventory
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		t.Fatal(err)
	}
	if len(inv.Figures) != 2 {
		t.Errorf("figures = %v (dashboard.html must be excluded)", inv.Figures)
	}
	if len(inv.Insights) != 2 {
		t.Errorf("insights = %v", inv.Insights)
	}
	if inv.Dataflow != "workflow.dot" {
		t.Errorf("dataflow = %q", inv.Dataflow)
	}
	if len(inv.CSVs) != 1 || len(inv.PNGs) != 1 || len(inv.Specs) != 1 {
		t.Errorf("inventory = %+v", inv)
	}
	if inv.Report != "report.md" || inv.Facts != "facts.json" {
		t.Errorf("report/facts not indexed: %+v", inv)
	}
}

func TestIndexPage(t *testing.T) {
	s, _ := New(fixtureDir(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	page := string(body)
	for _, want := range []string{"fig4-wait-times", "fig6-backfill", "/files/", "LLM analyses", "analysis report"} {
		if !strings.Contains(page, want) {
			t.Errorf("index missing %q", want)
		}
	}
	// Unknown paths 404 instead of serving the index.
	resp, err = http.Get(ts.URL + "/nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nonsense = %d", resp.StatusCode)
	}
}

func TestFileServing(t *testing.T) {
	s, _ := New(fixtureDir(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/files/fig4-wait-times.html")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "<html>waits</html>" {
		t.Errorf("served %q", body)
	}
}

func TestInsightRendering(t *testing.T) {
	s, _ := New(fixtureDir(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/insight/fig4-wait-times.insight.md")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	page := string(body)
	if !strings.Contains(page, "<h1>LLM analysis</h1>") || !strings.Contains(page, "<li>stat: 1</li>") {
		t.Errorf("markdown not rendered: %s", page)
	}
	// Path traversal is refused.
	for _, path := range []string{"/insight/../dashboard.go", "/insight/a/b", "/insight/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}
