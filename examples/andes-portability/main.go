// Andes portability: the paper's §4.3 study. The same workflow runs
// without modification against two very different systems — exascale
// GPU-centric Frontier and the throughput-oriented CPU cluster Andes —
// and the cross-system comparison reproduces the contrasts of Figures 7–9:
// Andes concentrates small short jobs, fails less and more uniformly, and
// over-estimates walltime more tightly.
//
//	go run ./examples/andes-portability
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"slurmsight/internal/analyze"
	"slurmsight/internal/cluster"
	"slurmsight/internal/core"
	"slurmsight/internal/sacct"
	"slurmsight/internal/sched"
	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

// runSystem executes one system's trace and workflow, returning its job
// records and summaries.
func runSystem(name string, sys *cluster.System, profile tracegen.Profile,
	start, end time.Time, seed int64, outRoot string) []slurm.Record {

	reqs, err := tracegen.Generate([]tracegen.Phase{{Profile: profile, Start: start, End: end}}, seed)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := sched.New(sched.DefaultConfig(sys))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(reqs, sched.Options{EmitSteps: true})
	if err != nil {
		log.Fatal(err)
	}
	store := sacct.NewStore()
	if err := store.Ingest(res); err != nil {
		log.Fatal(err)
	}
	store.Finalize()

	// The identical workflow configuration runs on both systems — the
	// paper's portability claim ("applied the same workflow without
	// modification").
	art, err := core.Run(context.Background(), core.Config{
		SystemName:  name,
		Store:       store,
		OutputDir:   filepath.Join(outRoot, name),
		Granularity: sacct.Monthly,
		Start:       start,
		End:         end,
		Workers:     6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d jobs / %d records analysed, dashboard at %s\n",
		name, art.Jobs, art.Records, art.DashboardPath)

	recs, err := store.Select(sacct.Query{})
	if err != nil {
		log.Fatal(err)
	}
	return recs
}

func main() {
	log.SetFlags(0)
	start := time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, 45)
	outRoot, err := os.MkdirTemp("", "slurmsight-portability-")
	if err != nil {
		log.Fatal(err)
	}

	fp := tracegen.FrontierProfile()
	fp.JobsPerDay, fp.Users = 250, 180
	frontierJobs := runSystem("frontier", cluster.Frontier(), fp, start, end, 11, outRoot)

	ap := tracegen.AndesProfile()
	ap.JobsPerDay, ap.Users = 250, 180
	andesJobs := runSystem("andes", cluster.Andes(), ap, start, end, 12, outRoot)

	cmp := analyze.CompareSystems("frontier", frontierJobs, "andes", andesJobs)

	fmt.Println("\n== Portability contrasts (paper §4.3) ==")
	fmt.Printf("%-38s %12s %12s\n", "", "frontier", "andes")
	row := func(label string, a, b float64, format string) {
		fmt.Printf("%-38s %12s %12s\n", label, fmt.Sprintf(format, a), fmt.Sprintf(format, b))
	}
	row("median allocated nodes", cmp.ScaleA.MedianNodes, cmp.ScaleB.MedianNodes, "%.0f")
	row("median elapsed (min)", cmp.ScaleA.MedianElapsedSec/60, cmp.ScaleB.MedianElapsedSec/60, "%.0f")
	row("small-short job share", cmp.ScaleA.SmallShortShare, cmp.ScaleB.SmallShortShare, "%.2f")
	row("large-long job share", cmp.ScaleA.LargeLongShare, cmp.ScaleB.LargeLongShare, "%.4f")
	row("mean per-user failed share", cmp.UsersA.MeanFailedShare, cmp.UsersB.MeanFailedShare, "%.3f")
	row("failed-share std across users", cmp.UsersA.StdFailedShare, cmp.UsersB.StdFailedShare, "%.3f")
	row("median walltime-use ratio", cmp.BackfillA.MedianUseRatio, cmp.BackfillB.MedianUseRatio, "%.2f")
	row("overestimation share (<75% used)", cmp.BackfillA.OverestimateShare, cmp.BackfillB.OverestimateShare, "%.2f")

	fmt.Println("\nexpected shape (Figures 7-9):")
	check("Andes concentrates smaller jobs", cmp.ScaleB.MedianNodes <= cmp.ScaleA.MedianNodes)
	check("Andes denser in small-short work", cmp.ScaleB.SmallShortShare > cmp.ScaleA.SmallShortShare)
	check("Frontier carries the large-long tail", cmp.ScaleA.LargeLongShare > cmp.ScaleB.LargeLongShare)
	check("Andes fails less", cmp.UsersB.MeanFailedShare < cmp.UsersA.MeanFailedShare)
	check("Andes failure rates more uniform", cmp.UsersB.StdFailedShare < cmp.UsersA.StdFailedShare)
	check("over-estimation persists on both", cmp.BackfillA.OverestimateShare > 0.3 && cmp.BackfillB.OverestimateShare > 0.3)
	check("Andes estimates are tighter", cmp.BackfillB.MedianUseRatio > cmp.BackfillA.MedianUseRatio)

	fmt.Printf("\nartifacts under %s\n", outRoot)
}

func check(label string, ok bool) {
	mark := "OK "
	if !ok {
		mark = "!! "
	}
	fmt.Printf("  %s %s\n", mark, label)
}
