// Policy advisor: the paper's §6 future-work features made concrete —
// AI-predicted walltime estimation embedded into submission, with a
// what-if re-simulation that quantifies dynamic rescheduling and time
// reclamation, and an LLM comparison narrating the before/after.
//
// The experiment: replay a contended Frontier workload twice — once with
// the users' own (over-estimated) walltime requests and once with the
// predictor's tightened requests — and compare queue waits, backfill
// activity, and the timeout risk the predictor introduces.
//
//	go run ./examples/policy-advisor
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"
	"time"

	"slurmsight/internal/analyze"
	"slurmsight/internal/cluster"
	"slurmsight/internal/core"
	"slurmsight/internal/llm"
	"slurmsight/internal/predict"
	"slurmsight/internal/raster"
	"slurmsight/internal/sched"
	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

func simulate(reqs []tracegen.Request) *sched.Result {
	sim, err := sched.New(sched.DefaultConfig(cluster.Frontier()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(reqs, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	log.SetFlags(0)
	start := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	profile := tracegen.FrontierProfile()
	profile.JobsPerDay = 320
	profile.Users = 150
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: profile, Start: start, End: start.AddDate(0, 0, 45),
	}}, 19)
	if err != nil {
		log.Fatal(err)
	}

	// --- Baseline: the users' own requests ---
	baseline := simulate(reqs)
	fmt.Printf("baseline:   %.1f%% utilization, mean wait %9s, %4d backfilled, %4d timeouts\n",
		100*baseline.Stats.Utilization(), baseline.Stats.MeanWait().Round(time.Second),
		baseline.Stats.Backfilled, baseline.Stats.JobsTimeout)

	// --- Offline evaluation of the predictor on the baseline trace ---
	p := predict.NewPredictor()
	ev, err := predict.Evaluate(baseline.Jobs, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredictor replay over the baseline trace:\n")
	fmt.Printf("  covered %d of %d jobs (warmup excluded)\n", ev.Covered, ev.Jobs)
	fmt.Printf("  reclaimed %.0f of %.0f reclaimable node-hours (%.0f%%)\n",
		ev.ReclaimedNodeHours, ev.ReclaimableNodeHours, 100*ev.ReclaimedShare())
	fmt.Printf("  timeout risk %.2f%% of covered jobs\n", 100*ev.TimeoutRisk)

	// --- What-if: resubmit with predicted walltimes ---
	whatIf := make([]tracegen.Request, len(reqs))
	copy(whatIf, reqs)
	tightened := predict.ApplyToRequests(len(whatIf), predict.NewPredictor(),
		func(i int) (string, string, time.Duration, time.Duration) {
			r := &whatIf[i]
			return r.User, r.Class, r.Timelimit, r.TrueRuntime
		},
		func(i int, limit time.Duration) { whatIf[i].Timelimit = limit })
	fmt.Printf("\nwhat-if resubmission: %d of %d requests tightened\n", tightened, len(whatIf))

	predicted := simulate(whatIf)
	fmt.Printf("predicted:  %.1f%% utilization, mean wait %9s, %4d backfilled, %4d timeouts\n",
		100*predicted.Stats.Utilization(), predicted.Stats.MeanWait().Round(time.Second),
		predicted.Stats.Backfilled, predicted.Stats.JobsTimeout)

	meanBase := baseline.Stats.MeanWait()
	meanPred := predicted.Stats.MeanWait()
	if meanBase > 0 {
		fmt.Printf("\nqueue wait change: %s → %s (%+.1f%%)\n",
			meanBase.Round(time.Second), meanPred.Round(time.Second),
			100*(float64(meanPred)-float64(meanBase))/float64(meanBase))
	}
	fmt.Printf("timeout change: %d → %d (the price of prediction risk)\n",
		baseline.Stats.JobsTimeout, predicted.Stats.JobsTimeout)
	bfBase := analyze.SummarizeBackfill(analyze.RequestedVsActual(baseline.Jobs))
	bfPred := analyze.SummarizeBackfill(analyze.RequestedVsActual(predicted.Jobs))
	fmt.Printf("median walltime-use ratio: %.0f%% → %.0f%%\n",
		100*bfBase.MedianUseRatio, 100*bfPred.MedianUseRatio)

	// --- LLM comparison of the two schedules' wait profiles ---
	analyst := httptest.NewServer(llm.NewServer("sk-advisor").Handler())
	defer analyst.Close()
	client := llm.NewClient(analyst.URL, "sk-advisor")

	chartA := core.WaitChart("baseline requests", jobsOf(baseline))
	chartB := core.WaitChart("predicted requests", jobsOf(predicted))
	pngA, err := raster.PNG(chartA, 960, 540)
	if err != nil {
		log.Fatal(err)
	}
	pngB, err := raster.PNG(chartB, 960, 540)
	if err != nil {
		log.Fatal(err)
	}
	imgA, err := llm.EncodeImage("baseline", pngA, chartA)
	if err != nil {
		log.Fatal(err)
	}
	imgB, err := llm.EncodeImage("predicted", pngB, chartB)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := client.Analyze(context.Background(), llm.ComparePrompt, imgA, imgB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== LLM comparison of the two schedules ==")
	text := resp.Text
	if i := strings.Index(text, "\n\nFirst chart:"); i > 0 {
		text = text[:i]
	}
	fmt.Println(text)
}

func jobsOf(res *sched.Result) []slurm.Record { return res.Jobs }
