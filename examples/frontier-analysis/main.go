// Frontier analysis: the paper's §4.1–4.2 study on a synthetic Frontier
// trace with real contention. It runs the full hybrid workflow — static
// figures 1 and 3–6 plus the LLM insight and month-over-month comparison
// stages against an in-process analyst endpoint — and prints the
// quantitative reading of each figure next to excerpts of the generated
// interpretations.
//
//	go run ./examples/frontier-analysis
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/core"
	"slurmsight/internal/llm"
	"slurmsight/internal/sacct"
	"slurmsight/internal/sched"
	"slurmsight/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	start := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, 60)

	// A contended workload: enough large jobs that queues form and the
	// backfill scheduler earns its keep.
	profile := tracegen.FrontierProfile()
	profile.JobsPerDay = 300
	profile.Users = 220
	reqs, err := tracegen.Generate([]tracegen.Phase{{Profile: profile, Start: start, End: end}}, 7)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := sched.New(sched.DefaultConfig(cluster.Frontier()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(reqs, sched.Options{EmitSteps: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d jobs / %d steps over %d days: %.1f%% utilization, "+
		"%d backfilled, mean wait %s, max wait %s\n\n",
		len(res.Jobs), len(res.Steps), 60, 100*res.Stats.Utilization(),
		res.Stats.Backfilled, res.Stats.MeanWait().Round(time.Second),
		res.Stats.MaxWait.Round(time.Minute))

	store := sacct.NewStore()
	if err := store.Ingest(res); err != nil {
		log.Fatal(err)
	}
	store.Finalize()

	// The AI subworkflow talks to an in-process analyst endpoint.
	analyst := httptest.NewServer(llm.NewServer("sk-example").Handler())
	defer analyst.Close()

	outDir, err := os.MkdirTemp("", "slurmsight-frontier-")
	if err != nil {
		log.Fatal(err)
	}
	art, err := core.Run(context.Background(), core.Config{
		SystemName:  "frontier",
		Store:       store,
		OutputDir:   outDir,
		Granularity: sacct.Monthly,
		Start:       start,
		End:         end,
		Workers:     6,
		EnableAI:    true,
		LLM:         llm.NewClient(analyst.URL, "sk-example"),
	})
	if err != nil {
		log.Fatal(err)
	}

	s := art.Summaries
	fmt.Println("== Figure 1: job and job-step volume ==")
	for _, v := range s.Volume {
		fmt.Printf("  %d: %d jobs, %d steps\n", v.Year, v.Jobs, v.Steps)
	}
	fmt.Printf("  steps per job: %.1f (paper: ~14x, steps dominate)\n\n", s.StepJobRatio)

	fmt.Println("== Figure 3: allocated nodes vs elapsed time ==")
	fmt.Printf("  median %.0f nodes / %.0f min; %.0f%% small-short, %.1f%% large-long\n\n",
		s.Scale.MedianNodes, s.Scale.MedianElapsedSec/60,
		100*s.Scale.SmallShortShare, 100*s.Scale.LargeLongShare)

	fmt.Println("== Figure 4: queue waits by final state ==")
	fmt.Printf("  p50 %s · p90 %s · p99 %s · long-tail(>100ks) %.2f%%\n\n",
		dur(s.Waits.P50), dur(s.Waits.P90), dur(s.Waits.P99), 100*s.Waits.LongWaits)

	fmt.Println("== Figure 5: end states per user ==")
	fmt.Printf("  %d users · mean failed share %.1f%% · top decile owns %.0f%% of failures\n\n",
		s.Users.Users, 100*s.Users.MeanFailedShare, 100*s.Users.TopDecileFailures)

	fmt.Println("== Figure 6: requested vs actual walltime ==")
	fmt.Printf("  %.0f%% of jobs use <75%% of request · median use ratio %.0f%% · "+
		"%.1f%% backfilled · backfilled median %s vs regular %s · "+
		"%.0f reclaimable node-hours\n\n",
		100*s.Backfill.OverestimateShare, 100*s.Backfill.MedianUseRatio,
		100*s.Backfill.BackfilledShare,
		dur(s.Backfill.MedianActualBackfilled), dur(s.Backfill.MedianActualRegular),
		s.Reclaimable)

	fmt.Println("== Conversational agent (§6 future work) ==")
	agent := llm.NewAgent(art.Facts("frontier"))
	for _, q := range []string{"why are queue waits long?", "what should we tune first?"} {
		reply := agent.Ask(q, "")
		answer := reply.Text
		if lines := strings.SplitN(answer, "\n", 3); len(lines) > 1 {
			answer = strings.Join(lines[:2], " ")
		} else {
			answer = firstSentences(answer, 2)
		}
		fmt.Printf("  Q: %s\n  A: %s\n\n", q, answer)
	}

	fmt.Println("== LLM interpretations (§4.2) ==")
	for _, key := range []string{core.FigWaitTimes, core.FigBackfill} {
		excerpt(art.Figures[key].InsightPath)
	}
	excerpt(art.ComparePath)

	fmt.Printf("artifacts in %s (serve with: go run ./cmd/dashboard -dir %s)\n", outDir, outDir)
}

func dur(seconds float64) string {
	return (time.Duration(seconds) * time.Second).Round(time.Second).String()
}

// firstSentences truncates text after n sentences.
func firstSentences(text string, n int) string {
	count := 0
	for i, r := range text {
		if r == '.' || r == '\n' {
			count++
			if count >= n {
				return text[:i+1]
			}
		}
	}
	return text
}

// excerpt prints the first sentences of a generated analysis.
func excerpt(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	text := string(data)
	if i := strings.Index(text, "## Statistics"); i > 0 {
		text = text[:i]
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	body := lines[len(lines)-1]
	if len(body) > 400 {
		body = body[:400] + "…"
	}
	fmt.Printf("  [%s]\n  %s\n\n", lines[0], body)
}
