// Federated analytics: the paper's §6 future-work item made concrete —
// the identical workflow executed over two facilities, consolidated into
// a cross-facility comparison chart, a federated index page, and an LLM
// narrative contrasting the systems' walltime behaviour. The grounded
// conversational agent then answers policy questions about each facility
// from its own facts.
//
//	go run ./examples/federated
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/core"
	"slurmsight/internal/llm"
	"slurmsight/internal/sacct"
	"slurmsight/internal/sched"
	"slurmsight/internal/tracegen"
)

func buildStore(profile tracegen.Profile, sys *cluster.System,
	start, end time.Time, seed int64) *sacct.Store {
	reqs, err := tracegen.Generate([]tracegen.Phase{{Profile: profile, Start: start, End: end}}, seed)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := sched.New(sched.DefaultConfig(sys))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(reqs, sched.Options{EmitSteps: true})
	if err != nil {
		log.Fatal(err)
	}
	store := sacct.NewStore()
	if err := store.Ingest(res); err != nil {
		log.Fatal(err)
	}
	store.Finalize()
	return store
}

func main() {
	log.SetFlags(0)
	start := time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, 30)

	analyst := httptest.NewServer(llm.NewServer("sk-federated").Handler())
	defer analyst.Close()
	client := llm.NewClient(analyst.URL, "sk-federated")

	fp := tracegen.FrontierProfile()
	fp.JobsPerDay, fp.Users = 200, 140
	ap := tracegen.AndesProfile()
	ap.JobsPerDay, ap.Users = 200, 140

	outDir, err := os.MkdirTemp("", "slurmsight-federated-")
	if err != nil {
		log.Fatal(err)
	}
	member := func(name string, sys *cluster.System, p tracegen.Profile, seed int64) core.Member {
		return core.Member{Config: core.Config{
			SystemName:  name,
			Store:       buildStore(p, sys, start, end, seed),
			Granularity: sacct.Monthly,
			Start:       start,
			End:         end,
			Workers:     4,
			EnableAI:    true,
			LLM:         client,
			SystemNodes: sys.Nodes,
		}}
	}

	fed, err := core.RunFederated(context.Background(), outDir, []core.Member{
		member("frontier", cluster.Frontier(), fp, 41),
		member("andes", cluster.Andes(), ap, 42),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Federated members ==")
	for name, art := range fed.Members {
		fmt.Printf("  %-9s %6d jobs / %7d records — report %s\n",
			name, art.Jobs, art.Records, art.ReportPath)
	}

	cmp := fed.Comparison
	fmt.Println("\n== Cross-facility contrast ==")
	fmt.Printf("  median use ratio:   %s %.2f vs %s %.2f\n",
		cmp.NameA, cmp.BackfillA.MedianUseRatio, cmp.NameB, cmp.BackfillB.MedianUseRatio)
	fmt.Printf("  mean failed share:  %s %.3f vs %s %.3f\n",
		cmp.NameA, cmp.UsersA.MeanFailedShare, cmp.NameB, cmp.UsersB.MeanFailedShare)
	fmt.Printf("  small-short share:  %s %.2f vs %s %.2f\n",
		cmp.NameA, cmp.ScaleA.SmallShortShare, cmp.NameB, cmp.ScaleB.SmallShortShare)

	compare, err := os.ReadFile(fed.ComparePath)
	if err != nil {
		log.Fatal(err)
	}
	text := string(compare)
	if i := strings.Index(text, "\n\nFirst chart:"); i > 0 {
		text = text[:i]
	}
	fmt.Println("\n== LLM cross-facility narrative ==")
	fmt.Println(strings.TrimSpace(stripHeader(text)))

	fmt.Println("\n== Per-facility agent Q&A ==")
	for name, art := range fed.Members {
		agent := llm.NewAgent(art.Facts(name))
		reply := agent.Ask("what should we tune first?", "")
		first := strings.SplitN(reply.Text, "\n", 3)
		fmt.Printf("  [%s] %s\n", name, strings.Join(first[:min(2, len(first))], " "))
	}

	fmt.Printf("\nfederated index: %s\n", fed.IndexPath)
}

func stripHeader(md string) string {
	lines := strings.Split(md, "\n")
	var keep []string
	for _, l := range lines {
		if strings.HasPrefix(l, "#") || strings.HasPrefix(l, "model:") {
			continue
		}
		keep = append(keep, l)
	}
	return strings.Join(keep, "\n")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
