// Quickstart: the smallest end-to-end SlurmSight run. It synthesizes two
// weeks of Frontier-like workload, executes it through the scheduler
// simulator, stores the accounting records, and runs the static analysis
// workflow (obtain → curate → plots → dashboard), printing where every
// artifact landed.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/core"
	"slurmsight/internal/sacct"
	"slurmsight/internal/sched"
	"slurmsight/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	start := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, 14)

	// 1. Synthesize a workload: two weeks of moderate Frontier traffic.
	profile := tracegen.FrontierProfile()
	profile.JobsPerDay = 80
	profile.Users = 50
	reqs, err := tracegen.Generate([]tracegen.Phase{{Profile: profile, Start: start, End: end}}, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d submissions across %d days\n", len(reqs), 14)

	// 2. Execute it on the simulated scheduler.
	sim, err := sched.New(sched.DefaultConfig(cluster.Frontier()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(reqs, sched.Options{EmitSteps: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %d jobs, %d steps, %.1f%% utilization, mean wait %s\n",
		len(res.Jobs), len(res.Steps), 100*res.Stats.Utilization(),
		res.Stats.MeanWait().Round(time.Second))

	// 3. Ingest into the accounting store.
	store := sacct.NewStore()
	if err := store.Ingest(res); err != nil {
		log.Fatal(err)
	}
	store.Finalize()

	// 4. Run the analysis workflow.
	outDir, err := os.MkdirTemp("", "slurmsight-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	art, err := core.Run(context.Background(), core.Config{
		SystemName:  "frontier",
		Store:       store,
		OutputDir:   outDir,
		Granularity: sacct.Monthly,
		Start:       start,
		End:         end,
		Workers:     4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncurated %d records (%d malformed dropped)\n",
		art.Records, art.Curation.Malformed)
	fmt.Println("artifacts:")
	for _, key := range core.FigureKeys() {
		fmt.Printf("  %-28s %s\n", key, art.Figures[key].HTMLPath)
	}
	fmt.Printf("  %-28s %s\n", "dashboard", art.DashboardPath)
	fmt.Printf("  %-28s %s\n", "dataflow graph (Figure 2)", art.DOTPath)
	fmt.Printf("\nkey numbers: %.1f steps/job, %.0f%% of jobs overestimate walltime, "+
		"%.1f%% backfilled\n",
		art.Summaries.StepJobRatio,
		100*art.Summaries.Backfill.OverestimateShare,
		100*art.Summaries.Backfill.BackfilledShare)
	fmt.Printf("\nview the dashboard:  go run ./cmd/dashboard -dir %s\n", outDir)
}
